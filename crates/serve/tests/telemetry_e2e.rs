//! End-to-end telemetry over a real `TcpStream`: an instrumented
//! server with ANN and the quality probe running, scraped via the
//! `metrics` op and the `stats` telemetry object, while requests keep
//! being served — the probe must never block the read or write path.

use glodyne::IvfConfig;
use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_serve::json::Json;
use glodyne_serve::{json, AnnSettings, ProbeSettings, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tiny_session() -> EmbedderSession<GloDyNE> {
    let cfg = GloDyNEConfig {
        alpha: 0.5,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 8,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    };
    EmbedderSession::new(GloDyNE::new(cfg).unwrap(), EpochPolicy::Manual).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn round_trip(&mut self, request: &str) -> Json {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    /// Scrape the `metrics` op. The exposition is raw multi-line text
    /// with no terminator, so pipeline a `stats` request behind it and
    /// collect lines until the stats response arrives.
    fn scrape_metrics(&mut self) -> String {
        self.writer
            .write_all(b"{\"cmd\":\"metrics\"}\n{\"cmd\":\"stats\"}\n")
            .unwrap();
        self.writer.flush().unwrap();
        let mut text = String::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read exposition");
            if line.starts_with(r#"{"ok":true,"cmd":"stats""#) {
                return text;
            }
            text.push_str(&line);
        }
    }
}

fn is_ok(v: &Json) -> bool {
    v.get("ok") == Some(&Json::Bool(true))
}

fn instrumented_config() -> ServerConfig {
    ServerConfig {
        ann: Some(AnnSettings {
            config: IvfConfig {
                cells: 4,
                ..Default::default()
            },
            default_nprobe: 4,
        }),
        telemetry: true,
        probe: Some(ProbeSettings {
            period_ms: 5,
            k: 5,
            sample: 8,
            seed: 42,
        }),
        slow_query_us: 0, // every request is "slow": exercises the ring
        ..ServerConfig::default()
    }
}

#[test]
fn metrics_without_telemetry_is_unavailable() {
    let server = Server::bind(tiny_session(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr());
    let resp = client.round_trip(r#"{"cmd":"metrics"}"#);
    assert!(!is_ok(&resp));
    assert_eq!(resp.get("kind").and_then(Json::as_str), Some("unavailable"));
    // The stats object renders "telemetry":null — pre-telemetry wire
    // compatibility on a live server.
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert_eq!(stats.get("telemetry"), Some(&Json::Null), "{stats}");
    assert!(stats.get("queue_high_water").is_some(), "{stats}");
    client.round_trip(r#"{"cmd":"shutdown"}"#);
    server.join();
}

#[test]
fn instrumented_server_probes_scrapes_and_never_blocks() {
    let server = Server::bind(tiny_session(), "127.0.0.1:0", instrumented_config()).unwrap();
    let mut client = Client::connect(server.local_addr());

    // Two 6-cliques + bridge: clustered enough for the IVF probe.
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 6;
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push(format!("[{},{},0]", base + i, base + j));
            }
        }
    }
    edges.push("[0,6,0]".to_string());
    let ingest = client.round_trip(&format!(
        r#"{{"cmd":"ingest","edges":[{}]}}"#,
        edges.join(",")
    ));
    assert!(is_ok(&ingest), "{ingest}");
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");

    // The probe runs continuously in the background (5ms period). While
    // it does, a burst of reads and writes must keep being answered —
    // the probe only clones epoch Arcs, it takes no lock a request
    // needs. Generous bound: seconds would mean a stuck path.
    let burst = Instant::now();
    for _ in 0..20 {
        let near = client.round_trip(r#"{"cmd":"nearest","node":2,"k":4,"mode":"ann"}"#);
        assert!(is_ok(&near), "{near}");
        let q = client.round_trip(r#"{"cmd":"query","node":7}"#);
        assert!(is_ok(&q), "{q}");
    }
    client.round_trip(r#"{"cmd":"ingest","edges":[[6,11,1]]}"#);
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "writes work mid-probe: {flush}");
    assert!(
        burst.elapsed() < Duration::from_secs(20),
        "requests stalled while the probe ran"
    );

    // Wait until at least one probe round has completed.
    let deadline = Instant::now() + Duration::from_secs(10);
    let probe = loop {
        let stats = client.round_trip(r#"{"cmd":"stats"}"#);
        let t = stats.get("telemetry").cloned().expect("telemetry object");
        assert_ne!(t, Json::Null, "{stats}");
        let probe = t.get("probe").cloned().expect("probe section");
        if probe.get("runs").and_then(Json::as_u64).unwrap_or(0) >= 1 {
            break probe;
        }
        assert!(Instant::now() < deadline, "no probe round within 10s");
        std::thread::sleep(Duration::from_millis(20));
    };
    let recall = probe.get("recall").and_then(Json::as_f64).unwrap();
    assert!(
        (0.0..=1.0).contains(&recall) && recall > 0.0,
        "live recall gauge in range: {recall}"
    );
    assert_eq!(probe.get("k").and_then(Json::as_u64), Some(5));

    // The full telemetry object is populated: wire latencies, stages,
    // queue wait, and — with slow_query_us=0 — the slow-query ring.
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    let t = stats.get("telemetry").cloned().unwrap();
    let wire = t.get("wire_latency_us").cloned().unwrap();
    for cmd in ["query", "nearest", "ingest", "flush", "stats"] {
        let count = wire
            .get(cmd)
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(count >= 1, "wire series {cmd} recorded: {stats}");
    }
    let train = t
        .get("stage_us")
        .and_then(|s| s.get("train"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(train >= 1, "trainer stage recorded");
    let slow = t.get("slow_queries").and_then(Json::as_arr).unwrap();
    assert!(!slow.is_empty(), "zero threshold fills the ring");
    assert!(slow.len() <= 32, "ring is bounded");
    for entry in slow {
        assert!(entry.get("cmd").is_some() && entry.get("micros").is_some());
    }

    // Prometheus scrape over the wire: every serving series is named,
    // including the live recall gauge.
    let text = client.scrape_metrics();
    for name in [
        "glodyne_wire_latency_us",
        "glodyne_queue_depth",
        "glodyne_queue_depth_high_water",
        "glodyne_queue_wait_us",
        "glodyne_stage_us",
        "glodyne_freshness_lag_us",
        "glodyne_probe_recall_at_k",
        "glodyne_probe_latency_us",
        "glodyne_probes_total",
        "glodyne_slow_queries_total",
    ] {
        assert!(text.contains(&format!("# TYPE {name}")), "missing {name}");
    }
    assert!(
        text.contains("glodyne_wire_latency_us_count{cmd=\"nearest\"}"),
        "per-command series:\n{text}"
    );

    client.round_trip(r#"{"cmd":"shutdown"}"#);
    server.join();
}

#[test]
fn sharded_instrumented_server_reports_per_shard_stages() {
    use glodyne_shard::ShardConfig;
    let server = Server::bind_sharded(
        vec![tiny_session(), tiny_session()],
        ShardConfig {
            shards: 2,
            min_partition_nodes: 8,
            ..Default::default()
        },
        "127.0.0.1:0",
        instrumented_config(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr());

    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 6;
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push(format!("[{},{},0]", base + i, base + j));
            }
        }
    }
    edges.push("[0,6,0]".to_string());
    client.round_trip(&format!(
        r#"{{"cmd":"ingest","edges":[{}]}}"#,
        edges.join(",")
    ));
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");

    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    let t = stats.get("telemetry").cloned().expect("telemetry object");
    assert_ne!(t, Json::Null, "{stats}");
    assert!(stats.get("queue_high_water").is_some());

    // The scrape carries both the global and the shard-labelled stage
    // series (each shard's trainer records into both).
    let text = client.scrape_metrics();
    assert!(
        text.contains("glodyne_stage_us_count{stage=\"train\"}"),
        "global stage series:\n{text}"
    );
    assert!(
        text.contains("stage=\"train\",shard=\"0\"")
            || text.contains("stage=\"train\",shard=\"1\""),
        "per-shard stage series:\n{text}"
    );

    client.round_trip(r#"{"cmd":"shutdown"}"#);
    server.join();
}
