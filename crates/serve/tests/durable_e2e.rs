//! End-to-end durability over a real `TcpStream`: serve a durable
//! session, speak the wire protocol, stop the server, and restart
//! from the same data directory.
//!
//! Pins the tentpole contract at the outermost layer:
//! - a clean wire `shutdown` writes a final snapshot, so the restart
//!   replays **zero** WAL events;
//! - the restarted server answers `query`/`nearest` **bit-exactly**
//!   like the pre-restart one (same epoch id, same float bits — the
//!   responses are byte-identical JSON lines);
//! - `stats` surfaces the `"durability"` object, including the
//!   recovery provenance after a restart;
//! - a corrupted WAL tail never panics the boot path.

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_durable::{DurableConfig, DurableSession, FsyncPolicy};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_serve::json::Json;
use glodyne_serve::{json, Server, ServerConfig};
use glodyne_shard::ShardConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn tiny_model() -> GloDyNE {
    let cfg = GloDyNEConfig {
        alpha: 0.5,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 8,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    };
    GloDyNE::new(cfg).unwrap()
}

fn durable_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "glodyne-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// One request, one raw response line (for byte-exact comparison).
    fn round_trip_raw(&mut self, request: &str) -> String {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end().to_string()
    }

    fn round_trip(&mut self, request: &str) -> Json {
        let line = self.round_trip_raw(request);
        json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn is_ok(v: &Json) -> bool {
    v.get("ok") == Some(&Json::Bool(true))
}

const PROBES: [u32; 4] = [0, 3, 7, 999];

/// The raw `query` + `nearest` response lines for every probe — the
/// byte-exact read surface a restart must reproduce.
fn read_surface(client: &mut Client) -> Vec<String> {
    let mut lines = Vec::new();
    for n in PROBES {
        lines.push(client.round_trip_raw(&format!(r#"{{"cmd":"query","node":{n}}}"#)));
        lines.push(client.round_trip_raw(&format!(r#"{{"cmd":"nearest","node":{n},"k":5}}"#)));
    }
    lines
}

#[test]
fn durable_server_restart_is_byte_exact_over_the_wire() {
    let dir = durable_dir("restart");
    let dcfg = DurableConfig {
        fsync: FsyncPolicy::EveryFlush,
        ..DurableConfig::default()
    };
    let session = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
    let durable = DurableSession::create(&dir, session, dcfg).unwrap();
    let server = Server::bind_durable(durable, None, "127.0.0.1:0", ServerConfig::default())
        .expect("bind durable server");
    let mut client = Client::connect(server.local_addr());

    let ingest = client.round_trip(
        r#"{"cmd":"ingest","edges":[[0,1,0],[1,2,0],[2,3,0],[3,4,0],[4,5,0],[5,6,0],[6,7,0]]}"#,
    );
    assert!(is_ok(&ingest), "{ingest}");
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert_eq!(flush.get("stepped"), Some(&Json::Bool(true)), "{flush}");

    // The stats durability object is live (and null-free where it
    // should be) on a fresh lineage.
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    let durability = stats.get("durability").expect("durability key");
    assert_ne!(durability, &Json::Null, "{stats}");
    assert_eq!(durability.get("recovered_from"), Some(&Json::Null));
    assert!(durability.get("wal_segments").is_some());

    let before = read_surface(&mut client);
    // Clean wire shutdown: queue drained, WAL fsynced, final snapshot.
    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye), "{bye}");
    server.join();

    // Restart from the same directory.
    let (recovered, report) =
        DurableSession::recover(&dir, dcfg, EpochPolicy::Manual, false, tiny_model).unwrap();
    assert_eq!(
        report.replayed_events, 0,
        "clean shutdown must leave nothing to replay: {report:?}"
    );
    assert!(report.wal_clean);
    let server = Server::bind_durable(
        recovered,
        Some(report.recovered_from.clone()),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("rebind durable server");
    let mut client = Client::connect(server.local_addr());

    assert_eq!(
        read_surface(&mut client),
        before,
        "query/nearest responses must be byte-identical after restart"
    );
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    let durability = stats.get("durability").expect("durability key");
    assert_eq!(
        durability.get("recovered_from").and_then(Json::as_str),
        Some(report.recovered_from.as_str()),
        "{stats}"
    );
    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_durable_server_restart_is_byte_exact_over_the_wire() {
    let dir = durable_dir("sharded");
    let shard_cfg = ShardConfig {
        shards: 2,
        min_partition_nodes: 8,
        ..Default::default()
    };
    let dcfg = DurableConfig {
        fsync: FsyncPolicy::EveryFlush,
        snapshot_every: 1,
        ..DurableConfig::default()
    };
    let bind = |dir: &std::path::Path| {
        Server::bind_sharded_durable(
            dir,
            shard_cfg,
            dcfg,
            EpochPolicy::Manual,
            "127.0.0.1:0",
            ServerConfig::default(),
            |_| tiny_model(),
        )
        .expect("bind sharded durable server")
    };
    let (server, recovered) = bind(&dir);
    assert!(recovered.is_none(), "fresh directory");
    let mut client = Client::connect(server.local_addr());

    // Two tight communities and a bridge, enough for a rebalance.
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 10;
        for i in 0..10 {
            for j in (i + 1)..10 {
                edges.push(format!("[{},{},0]", base + i, base + j));
            }
        }
    }
    edges.push("[0,10,0]".to_string());
    let ingest = client.round_trip(&format!(
        r#"{{"cmd":"ingest","edges":[{}]}}"#,
        edges.join(",")
    ));
    assert!(is_ok(&ingest), "{ingest}");
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");

    let before = read_surface(&mut client);
    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye), "{bye}");
    server.join();

    let (server, recovered) = bind(&dir);
    let provenance = recovered.expect("lineage found on restart");
    assert!(
        provenance.contains("+ 0 router events"),
        "clean shutdown replays nothing: {provenance}"
    );
    let mut client = Client::connect(server.local_addr());
    assert_eq!(
        read_surface(&mut client),
        before,
        "sharded query/nearest responses must be byte-identical after restart"
    );
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    let durability = stats.get("durability").expect("durability key");
    assert_eq!(
        durability.get("recovered_from").and_then(Json::as_str),
        Some(provenance.as_str()),
        "{stats}"
    );
    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_wal_tail_still_boots_and_serves() {
    let dir = durable_dir("corrupt");
    let dcfg = DurableConfig {
        fsync: FsyncPolicy::EveryNEvents(1),
        snapshot_every: 0, // keep everything in the WAL
        ..DurableConfig::default()
    };
    let session = EmbedderSession::new(tiny_model(), EpochPolicy::EveryNEvents(4)).unwrap();
    let mut durable = DurableSession::create(&dir, session, dcfg).unwrap();
    for i in 0..17u32 {
        durable
            .apply(
                u64::from(i) + 1,
                glodyne_graph::state::GraphEvent::add_edge(
                    glodyne_graph::NodeId(i),
                    glodyne_graph::NodeId(i + 1),
                    0,
                ),
            )
            .unwrap();
    }
    drop(durable); // crash: no finalize, torn tail is fair game

    // Mangle the newest WAL segment: truncate mid-frame and flip a
    // byte further back.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    let newest = segments.last().expect("wal segment on disk");
    let mut bytes = std::fs::read(newest).unwrap();
    let cut = bytes.len() - bytes.len() / 4;
    bytes.truncate(cut.max(16));
    if bytes.len() > 20 {
        bytes[20] ^= 0xa5;
    }
    std::fs::write(newest, &bytes).unwrap();

    // Recovery heals to the longest valid prefix — never a panic —
    // and the server boots and answers.
    let (recovered, report) =
        DurableSession::recover(&dir, dcfg, EpochPolicy::EveryNEvents(4), false, tiny_model)
            .unwrap();
    assert!(!report.wal_clean, "the tail was torn: {report:?}");
    let server = Server::bind_durable(
        recovered,
        Some(report.recovered_from.clone()),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind after corruption");
    let mut client = Client::connect(server.local_addr());
    let q = client.round_trip(r#"{"cmd":"query","node":0}"#);
    assert!(
        is_ok(&q) || q.get("kind").and_then(Json::as_str) == Some("not_found"),
        "boot after corruption must serve structured responses: {q}"
    );
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert_ne!(stats.get("durability"), Some(&Json::Null), "{stats}");
    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
