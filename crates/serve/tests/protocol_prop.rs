//! Property coverage for the wire parser: arbitrary byte soup,
//! mutilated valid requests, truncations, and oversized payloads must
//! all come back as structured errors — never a panic, never a hang.

use glodyne_serve::protocol::{self, ErrorKind};
use glodyne_serve::{json, Request};
use proptest::prelude::*;

/// A pool of valid request lines the mutation strategies start from.
const VALID: &[&str] = &[
    r#"{"cmd":"query","node":7}"#,
    r#"{"cmd":"nearest","node":7,"k":3}"#,
    r#"{"cmd":"ingest","edges":[[0,1,3],[1,2,4]]}"#,
    r#"{"cmd":"ingest","events":[{"op":"add","u":0,"v":1,"t":1},{"op":"remove_node","node":9,"t":2}]}"#,
    r#"{"cmd":"flush"}"#,
    r#"{"cmd":"stats"}"#,
    r#"{"cmd":"shutdown"}"#,
];

proptest! {
    /// Arbitrary byte strings never panic the parser.
    #[test]
    fn random_strings_never_panic(bytes in prop::collection::vec(0u16..256, 0..200usize)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = protocol::parse_request(&text);
    }

    /// Truncating a valid request at any byte boundary yields a clean
    /// bad_request (or, for a lucky prefix, a valid parse — never a
    /// panic).
    #[test]
    fn truncations_are_structured_errors((which, cut) in (0usize..7, 0usize..100)) {
        let line = VALID[which];
        let cut = cut.min(line.len());
        // Snap to a char boundary (these lines are ASCII, but stay safe).
        let prefix = &line[..cut];
        if let Err(e) = protocol::parse_request(prefix) {
            prop_assert_eq!(e.kind, ErrorKind::BadRequest);
            prop_assert!(!e.message.is_empty());
        }
    }

    /// Flipping one byte of a valid request never panics, and any error
    /// is structured.
    #[test]
    fn single_byte_mutations_never_panic(
        (which, pos, byte) in (0usize..7, 0usize..100, 0u16..256)
    ) {
        let mut bytes = VALID[which].as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte as u8;
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = protocol::parse_request(&text) {
            prop_assert_eq!(e.kind, ErrorKind::BadRequest);
        }
    }

    /// Deeply nested / repeated structures are rejected, not stack-
    /// overflowed.
    #[test]
    fn pathological_nesting_is_rejected(depth in 1usize..5000) {
        let line = format!(
            "{{\"cmd\":\"ingest\",\"edges\":{}1{}}}",
            "[".repeat(depth),
            "]".repeat(depth)
        );
        let r = protocol::parse_request(&line);
        prop_assert!(r.is_err());
    }

    /// Every valid request round-trips through the parser, and its
    /// response constructors emit parseable single-line JSON.
    #[test]
    fn valid_requests_parse(which in 0usize..7) {
        let parsed = protocol::parse_request(VALID[which]);
        prop_assert!(parsed.is_ok(), "{:?}", parsed);
    }

    /// Numbers at the edges of the node-id domain behave: in-range
    /// parses, out-of-range is a structured error.
    #[test]
    fn node_id_domain_edges(node in 0u64..u32::MAX as u64 + 1000) {
        let line = format!("{{\"cmd\":\"query\",\"node\":{node}}}");
        match protocol::parse_request(&line) {
            Ok(Request::Query { node: got }) => {
                prop_assert!(node <= u32::MAX as u64);
                prop_assert_eq!(got.0 as u64, node);
            }
            Ok(other) => prop_assert!(false, "unexpected parse {:?}", other),
            Err(e) => {
                prop_assert!(node > u32::MAX as u64, "{}", e);
                prop_assert_eq!(e.kind, ErrorKind::BadRequest);
            }
        }
    }

    /// The JSON writer and parser agree on arbitrary generated values
    /// (numbers limited to integers: float text round-tripping is
    /// covered separately by the f32 unit tests).
    #[test]
    fn json_display_reparses(
        (a, b, s) in (0u64..1_000_000, 0u64..100, prop::collection::vec(32u8..127, 0..20usize))
    ) {
        let s = String::from_utf8_lossy(&s).into_owned();
        let v = json::Json::Obj(vec![
            ("a".to_string(), json::Json::Num(a as f64)),
            ("b".to_string(), json::Json::Arr(vec![json::Json::Num(b as f64)])),
            ("s".to_string(), json::Json::Str(s)),
            ("n".to_string(), json::Json::Null),
            ("t".to_string(), json::Json::Bool(a % 2 == 0)),
        ]);
        let reparsed = json::parse(&v.to_string());
        prop_assert_eq!(reparsed.as_ref(), Ok(&v), "{}", v);
    }
}

/// An ingest body larger than the event cap is refused with a clear
/// message (deterministic, so a plain test rather than a property).
#[test]
fn oversized_ingest_batch_is_refused() {
    let mut line = String::from(r#"{"cmd":"ingest","edges":["#);
    for i in 0..=protocol::MAX_INGEST_EVENTS {
        if i > 0 {
            line.push(',');
        }
        line.push_str("[1,2]");
    }
    line.push_str("]}");
    let err = protocol::parse_request(&line).unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
    assert!(err.message.contains("cap"), "{err}");
}
