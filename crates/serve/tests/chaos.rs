//! Chaos harness: drive the real server under seeded failpoint
//! schedules and pin the resilience contract end to end:
//!
//! - a stalled trainer flips `stats.health.degraded`, writes get
//!   structured `degraded` errors, and reads keep answering from the
//!   last published epoch — never blocking behind the write path;
//! - injected fsync/snapshot failures are absorbed as log lines: the
//!   read surface stays byte-stable and no panic escapes a thread;
//! - fast-fail ingest against a wedged trainer answers `overloaded`
//!   immediately while a concurrent reader stays fast;
//! - a crash (drop without finalize) under chaos recovers onto exactly
//!   the committed event prefix, bit-exact with a clean control run of
//!   that same prefix.
//!
//! The failpoint registry is process-global, so every test serializes
//! on [`CHAOS_LOCK`] and disarms on exit (panic included) via
//! [`Armed`].

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_chaos::{sites, Action, Rule};
use glodyne_durable::{DurableConfig, DurableSession, FsyncPolicy};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use glodyne_serve::json::Json;
use glodyne_serve::{json, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Registry-wide serialization: chaos sites are process globals.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard: holds the registry lock and guarantees a disarmed
/// registry on the way out, even when an assertion fails.
struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl Armed<'_> {
    fn lock() -> Self {
        let guard = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        glodyne_chaos::disarm();
        Armed(guard)
    }
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        glodyne_chaos::disarm();
    }
}

fn tiny_model() -> GloDyNE {
    let cfg = GloDyNEConfig {
        alpha: 0.5,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 8,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    };
    GloDyNE::new(cfg).unwrap()
}

fn chaos_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "glodyne-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn round_trip_raw(&mut self, request: &str) -> String {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end().to_string()
    }

    fn round_trip(&mut self, request: &str) -> Json {
        let line = self.round_trip_raw(request);
        json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn is_ok(v: &Json) -> bool {
    v.get("ok") == Some(&Json::Bool(true))
}

fn kind(v: &Json) -> Option<&str> {
    v.get("kind").and_then(Json::as_str)
}

/// Raw query/nearest lines for a few probes — the byte-stable read
/// surface chaos must not move.
fn read_surface(client: &mut Client) -> Vec<String> {
    let mut lines = Vec::new();
    for n in [0u32, 3, 7] {
        lines.push(client.round_trip_raw(&format!(r#"{{"cmd":"query","node":{n}}}"#)));
        lines.push(client.round_trip_raw(&format!(r#"{{"cmd":"nearest","node":{n},"k":5}}"#)));
    }
    lines
}

fn seed_edges() -> String {
    let mut edges = Vec::new();
    for i in 0..10u32 {
        edges.push(format!("[{},{},0]", i, i + 1));
        edges.push(format!("[{},{},0]", i, (i + 2) % 11));
    }
    format!(r#"{{"cmd":"ingest","edges":[{}]}}"#, edges.join(","))
}

/// Poll `stats` until the health object reports degraded (or time out).
fn wait_degraded(client: &mut Client, within: Duration) -> Json {
    let deadline = Instant::now() + within;
    loop {
        let stats = client.round_trip(r#"{"cmd":"stats"}"#);
        let health = stats.get("health").cloned().unwrap_or(Json::Null);
        if health.get("degraded") == Some(&Json::Bool(true)) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "health never went degraded: {stats}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A stalled trainer degrades writes but the read path keeps answering
/// the last published epoch — and recovers once the stall clears.
#[test]
fn stalled_trainer_degrades_writes_reads_keep_serving() {
    let _armed = Armed::lock();
    let session = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
    let cfg = ServerConfig {
        stall_after_ms: 100,
        default_deadline_ms: Some(400),
        ..ServerConfig::default()
    };
    let server = Server::bind(session, "127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(server.local_addr());

    // Healthy baseline: one committed epoch, health green.
    assert!(is_ok(&client.round_trip(&seed_edges())));
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert_eq!(
        stats.get("health").and_then(|h| h.get("degraded")),
        Some(&Json::Bool(false)),
        "{stats}"
    );
    let before = read_surface(&mut client);

    // Wedge the trainer on its next message.
    glodyne_chaos::set(sites::TRAINER_STEP, Rule::Always(Action::Stall));
    assert!(is_ok(
        &client.round_trip(r#"{"cmd":"ingest","edges":[[20,21,1]]}"#)
    ));
    // The flush deadline (server default 400ms) bounds the wait; the
    // trainer never picks the flush up, so the deadline fires.
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert_eq!(kind(&flush), Some("deadline_exceeded"), "{flush}");

    // Watchdog: pending flush + silent trainer past stall_after_ms.
    let stats = wait_degraded(&mut client, Duration::from_secs(10));
    let health = stats.get("health").unwrap();
    assert_eq!(
        health.get("trainer_alive"),
        Some(&Json::Bool(true)),
        "{stats}"
    );
    assert!(
        health.get("stalled_ms").and_then(Json::as_u64).unwrap_or(0) > 0,
        "{stats}"
    );

    // Degraded mode: reads answer byte-identically from the published
    // epoch (on a fresh connection, proving no shared-thread luck);
    // writes get the structured `degraded` error.
    let mut reader = Client::connect(server.local_addr());
    assert_eq!(read_surface(&mut reader), before);
    let rejected = client.round_trip(r#"{"cmd":"ingest","edges":[[30,31,2]]}"#);
    assert_eq!(kind(&rejected), Some("degraded"), "{rejected}");
    let rejected = client.round_trip(r#"{"cmd":"flush"}"#);
    assert_eq!(kind(&rejected), Some("degraded"), "{rejected}");

    // Clear the stall: the trainer drains its backlog and health
    // returns green — degradation is a mode, not a ratchet.
    glodyne_chaos::disarm();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let flush = client.round_trip(r#"{"cmd":"flush"}"#);
        if is_ok(&flush) {
            break;
        }
        assert!(Instant::now() < deadline, "never recovered: {flush}");
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert_eq!(
        stats.get("health").and_then(|h| h.get("degraded")),
        Some(&Json::Bool(false)),
        "{stats}"
    );
    server.request_shutdown();
    server.join();
}

/// Durable serving under fsync + snapshot failures: writes keep being
/// accepted (durability errors are absorbed, not escalated), reads
/// never move off the published epoch, and nothing panics.
#[test]
fn fsync_and_snapshot_failures_never_take_reads_down() {
    let _armed = Armed::lock();
    let dir = chaos_dir("fsync");
    let dcfg = DurableConfig {
        fsync: FsyncPolicy::EveryFlush,
        snapshot_every: 1,
        ..DurableConfig::default()
    };
    let session = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
    let durable = DurableSession::create(&dir, session, dcfg).unwrap();
    let server = Server::bind_durable(durable, None, "127.0.0.1:0", ServerConfig::default())
        .expect("bind durable");
    let mut client = Client::connect(server.local_addr());

    assert!(is_ok(&client.round_trip(&seed_edges())));
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");
    let before = read_surface(&mut client);

    // Every fsync and snapshot write now fails.
    glodyne_chaos::set(sites::WAL_FSYNC, Rule::Always(Action::Fail));
    glodyne_chaos::set(sites::SNAPSHOT_WRITE, Rule::Always(Action::Fail));

    // Ingest still lands (append succeeds; the flush-time fsync error
    // is logged) and the server keeps answering structured responses.
    assert!(is_ok(
        &client.round_trip(r#"{"cmd":"ingest","edges":[[20,21,1]]}"#)
    ));
    let _flush = client.round_trip(r#"{"cmd":"flush"}"#); // may or may not step
    assert!(
        glodyne_chaos::fired(sites::WAL_FSYNC) > 0,
        "the fsync failpoint must actually have fired"
    );

    // Reads: answered, structured, and from a published epoch. The
    // original epoch's surface is still reachable if no step landed;
    // either way every probe gets a parseable response.
    for line in read_surface(&mut client) {
        let v = json::parse(&line).expect("parseable under chaos");
        assert!(
            is_ok(&v) || kind(&v) == Some("not_found"),
            "read must stay structured under fsync chaos: {v}"
        );
    }
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert!(is_ok(&stats), "{stats}");

    // Heal the disk: a fresh ingest + flush publishes again and the
    // read surface evolves off the epoch the readers were pinned to.
    // (The chaos-era flush consumed its events before the fsync error,
    // so a new event is needed to force a step.)
    glodyne_chaos::disarm();
    assert!(is_ok(
        &client.round_trip(r#"{"cmd":"ingest","edges":[[22,23,2]]}"#)
    ));
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");
    let after = read_surface(&mut client);
    assert_ne!(after, before, "post-heal flush must publish a new epoch");
    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fast-fail mode: with the trainer wedged and the queue full, ingest
/// answers `overloaded` immediately — and a concurrent reader on its
/// own connection stays fast the whole time.
#[test]
fn fast_fail_overload_sheds_and_reader_never_blocks() {
    let _armed = Armed::lock();
    let session = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
    let cfg = ServerConfig {
        queue_capacity: 2,
        fast_fail: true,
        ..ServerConfig::default()
    };
    let server = Server::bind(session, "127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(server.local_addr());
    assert!(is_ok(&client.round_trip(&seed_edges())));
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");

    glodyne_chaos::set(sites::TRAINER_STEP, Rule::Always(Action::Stall));
    // Fill the queue: the trainer stalls holding the first event, the
    // next two occupy the channel, and from then on fast-fail sheds.
    let mut shed = None;
    for i in 0..16u32 {
        let resp = client.round_trip(&format!(
            r#"{{"cmd":"ingest","edges":[[{},{},9]]}}"#,
            40 + i,
            41 + i
        ));
        if !is_ok(&resp) {
            shed = Some(resp);
            break;
        }
    }
    let shed = shed.expect("a full queue must shed in fast-fail mode");
    assert_eq!(kind(&shed), Some("overloaded"), "{shed}");
    assert!(
        shed.get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("overloaded")),
        "{shed}"
    );

    // The reader: short read timeout — if reads queued behind the
    // wedged write path this would time out, not answer.
    let reader_stream = TcpStream::connect(server.local_addr()).unwrap();
    reader_stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = Client {
        reader: BufReader::new(reader_stream.try_clone().unwrap()),
        writer: reader_stream,
    };
    for _ in 0..10 {
        let q = reader.round_trip(r#"{"cmd":"nearest","node":0,"k":3}"#);
        assert!(is_ok(&q), "reads must answer during overload: {q}");
    }

    glodyne_chaos::disarm();
    server.request_shutdown();
    server.join();
}

/// Crash under chaos, recover, and land bit-exactly on the committed
/// prefix: a durable lineage written under snapshot failures and fsync
/// delays is dropped without finalize (kill semantics), recovered, and
/// compared float-for-float against a clean in-memory control run of
/// exactly the events the lineage committed.
#[test]
fn kill_under_chaos_recovers_bit_exact_committed_prefix() {
    let _armed = Armed::lock();
    let dir = chaos_dir("kill");
    let dcfg = DurableConfig {
        fsync: FsyncPolicy::EveryNEvents(1),
        snapshot_every: 2,
        ..DurableConfig::default()
    };
    let events: Vec<GraphEvent> = (0..40u32)
        .map(|i| GraphEvent::add_edge(NodeId(i % 13), NodeId((i + 1) % 13), u64::from(i)))
        .collect();
    let policy = EpochPolicy::EveryNEvents(8);
    let session = EmbedderSession::new(tiny_model(), policy).unwrap();
    let mut durable = DurableSession::create(&dir, session, dcfg).unwrap();
    // Chaos strikes after the lineage is born: every further snapshot
    // fails and fsyncs are intermittently slow. Neither may change
    // *what* is committed, only how it is recovered (all from the WAL,
    // since no mid-run snapshot ever lands).
    glodyne_chaos::set(sites::SNAPSHOT_WRITE, Rule::Always(Action::Fail));
    glodyne_chaos::set(sites::WAL_FSYNC, Rule::EveryNth(Action::Delay(5), 7));
    let mut acked = 0u64;
    for (i, event) in events.iter().enumerate() {
        let seq = i as u64 + 1;
        if durable.apply(seq, *event).is_ok() {
            acked = seq;
        }
        let _ = durable.maybe_snapshot(); // chaos makes these fail; must be absorbed
    }
    assert!(acked > 0, "chaos must not reject every event");
    drop(durable); // crash: no finalize, no final snapshot

    // Recovery runs with the registry still armed — fsync delays and
    // snapshot failures during replay must not corrupt it either.
    let (recovered, report) =
        DurableSession::recover(&dir, dcfg, policy, false, tiny_model).unwrap();
    let committed = recovered.last_seq();
    assert!(
        committed <= acked,
        "recovery invented events: committed {committed} > acked {acked}"
    );
    assert!(
        report.replayed_events > 0,
        "with every snapshot failing, recovery must replay the WAL: {report:?}"
    );
    glodyne_chaos::disarm();

    // Control: a clean, chaos-free, non-durable run of exactly the
    // committed prefix.
    let mut control = EmbedderSession::new(tiny_model(), policy).unwrap();
    for event in events.iter().take(committed as usize) {
        control.apply(*event);
    }
    for node in 0..13u32 {
        assert_eq!(
            recovered.session().query(NodeId(node)),
            control.query(NodeId(node)),
            "node {node}: recovered state diverged from the committed prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Socket-level chaos: injected read/write failures drop connections
/// but never the server — the next connection is served normally.
#[test]
fn socket_chaos_drops_connections_not_the_server() {
    let _armed = Armed::lock();
    let session = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
    let server = Server::bind(session, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());
    assert!(is_ok(&client.round_trip(&seed_edges())));
    assert!(is_ok(&client.round_trip(r#"{"cmd":"flush"}"#)));

    // Every third socket op fails; hammer the server with fresh
    // connections, tolerating the injected disconnects.
    glodyne_chaos::set(sites::SOCKET_READ, Rule::EveryNth(Action::Fail, 3));
    glodyne_chaos::set(sites::SOCKET_WRITE, Rule::EveryNth(Action::Fail, 4));
    let mut answered = 0u32;
    for _ in 0..20 {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        };
        c.writer.write_all(b"{\"cmd\":\"query\",\"node\":0}\n").ok();
        c.writer.flush().ok();
        let mut line = String::new();
        if c.reader.read_line(&mut line).is_ok() && !line.trim().is_empty() {
            let v = json::parse(line.trim()).expect("structured even under socket chaos");
            assert!(is_ok(&v) || kind(&v).is_some(), "{v}");
            answered += 1;
        }
    }
    assert!(answered > 0, "some requests must get through the chaos");
    glodyne_chaos::disarm();

    // The server survived: a clean connection round-trips.
    let mut after = Client::connect(server.local_addr());
    let q = after.round_trip(r#"{"cmd":"query","node":0}"#);
    assert!(is_ok(&q), "{q}");
    server.request_shutdown();
    server.join();
}
