//! Wire-compatibility regression: a client written against the
//! pre-batch protocol (single `nearest`, exact and ANN) must observe
//! byte-identical behaviour, and the new `nearest_batch` command must
//! degrade to structured errors — never a panic or a dropped
//! connection — when fed the old single-probe request shape.

use glodyne::IvfConfig;
use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_serve::json::Json;
use glodyne_serve::{json, AnnSettings, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn tiny_session() -> EmbedderSession<GloDyNE> {
    let cfg = GloDyNEConfig {
        alpha: 0.5,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 8,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    };
    EmbedderSession::new(GloDyNE::new(cfg).unwrap(), EpochPolicy::Manual).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn round_trip(&mut self, request: &str) -> Json {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn is_ok(v: &Json) -> bool {
    v.get("ok") == Some(&Json::Bool(true))
}

fn kind(v: &Json) -> Option<&str> {
    v.get("kind").and_then(Json::as_str)
}

/// Start an ANN-enabled (optionally SQ8) server over a small path
/// graph, committed once.
fn ann_server(quantize: bool) -> Server {
    let cfg = ServerConfig {
        ann: Some(AnnSettings {
            config: IvfConfig {
                cells: 4,
                quantize,
                ..Default::default()
            },
            default_nprobe: 2,
        }),
        ..ServerConfig::default()
    };
    let server = Server::bind(tiny_session(), "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.local_addr());
    let ingest = client.round_trip(
        r#"{"cmd":"ingest","edges":[[0,1,0],[1,2,0],[2,3,0],[3,4,0],[4,5,0],[5,6,0],[6,7,0]]}"#,
    );
    assert!(is_ok(&ingest), "{ingest}");
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");
    server
}

#[test]
fn pre_batch_single_nearest_is_unchanged() {
    for quantize in [false, true] {
        let server = ann_server(quantize);
        let mut client = Client::connect(server.local_addr());

        // Exact single nearest: same shape as before the batch op —
        // top-level node, mode, neighbours; no `results` array.
        let near = client.round_trip(r#"{"cmd":"nearest","node":2,"k":3}"#);
        assert!(is_ok(&near), "{near}");
        assert_eq!(near.get("mode").and_then(Json::as_str), Some("exact"));
        assert_eq!(near.get("node").and_then(Json::as_u64), Some(2));
        assert!(near.get("results").is_none(), "{near}");
        let hits = near.get("neighbours").and_then(Json::as_arr).unwrap();
        assert!(!hits.is_empty() && hits.len() <= 3, "{near}");

        // ANN single nearest: mode/nprobe echoed exactly as before.
        let ann = client.round_trip(r#"{"cmd":"nearest","node":2,"k":3,"mode":"ann","nprobe":4}"#);
        assert!(is_ok(&ann), "{ann}");
        assert_eq!(ann.get("mode").and_then(Json::as_str), Some("ann"));
        assert_eq!(ann.get("nprobe").and_then(Json::as_u64), Some(4));
        assert!(ann.get("neighbours").and_then(Json::as_arr).is_some());

        // Unknown node: structured not_found, both modes, connection
        // kept.
        let miss = client.round_trip(r#"{"cmd":"nearest","node":404}"#);
        assert_eq!(kind(&miss), Some("not_found"), "{miss}");
        let miss = client.round_trip(r#"{"cmd":"nearest","node":404,"mode":"ann"}"#);
        assert_eq!(kind(&miss), Some("not_found"), "{miss}");

        let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
        assert!(is_ok(&bye));
        server.join();
    }
}

#[test]
fn old_shaped_nearest_batch_is_a_structured_bad_request() {
    let server = ann_server(false);
    let mut client = Client::connect(server.local_addr());

    // The single-probe shape against the batch command: a bad_request
    // naming the `nodes` array — never a panic, never a hangup.
    let old = client.round_trip(r#"{"cmd":"nearest_batch","node":5,"k":3}"#);
    assert!(!is_ok(&old), "{old}");
    assert_eq!(kind(&old), Some("bad_request"), "{old}");
    assert!(
        old.get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("`nodes` array")),
        "{old}"
    );

    // More malformed batches: every one a structured error with the
    // connection intact afterwards.
    for bad in [
        r#"{"cmd":"nearest_batch"}"#,
        r#"{"cmd":"nearest_batch","nodes":3}"#,
        r#"{"cmd":"nearest_batch","nodes":[3,"x"]}"#,
        r#"{"cmd":"nearest_batch","nodes":[3],"k":0}"#,
        r#"{"cmd":"nearest_batch","nodes":[3],"nprobe":2}"#,
    ] {
        let resp = client.round_trip(bad);
        assert_eq!(kind(&resp), Some("bad_request"), "{bad} -> {resp}");
    }
    let alive = client.round_trip(r#"{"cmd":"query","node":2}"#);
    assert!(is_ok(&alive), "connection survives bad batches: {alive}");

    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye));
    server.join();
}

#[test]
fn nearest_batch_matches_single_nearest_over_the_wire() {
    for quantize in [false, true] {
        let server = ann_server(quantize);
        let mut client = Client::connect(server.local_addr());

        // Exact batch over known + unknown probes: each known entry
        // equals the single-probe answer; the unknown probe is a null
        // entry, not an error.
        let batch = client.round_trip(r#"{"cmd":"nearest_batch","nodes":[0,3,404,6],"k":4}"#);
        assert!(is_ok(&batch), "{batch}");
        assert_eq!(batch.get("mode").and_then(Json::as_str), Some("exact"));
        let results = batch.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 4);
        for entry in results {
            let node = entry.get("node").and_then(Json::as_u64).unwrap();
            let neighbours = entry.get("neighbours").unwrap();
            if node == 404 {
                assert_eq!(neighbours, &Json::Null, "{batch}");
                continue;
            }
            let single = client.round_trip(&format!(r#"{{"cmd":"nearest","node":{node},"k":4}}"#));
            assert_eq!(
                Some(neighbours),
                single.get("neighbours"),
                "node {node}: batch vs single\n{batch}\n{single}"
            );
        }

        // ANN batch at full probe width: agrees with single ANN calls
        // and echoes the effective nprobe once for the whole batch.
        let batch = client.round_trip(
            r#"{"cmd":"nearest_batch","nodes":[0,3,6],"k":4,"mode":"ann","nprobe":1000}"#,
        );
        assert!(is_ok(&batch), "{batch}");
        assert_eq!(batch.get("mode").and_then(Json::as_str), Some("ann"));
        assert_eq!(batch.get("nprobe").and_then(Json::as_u64), Some(4));
        let results = batch.get("results").and_then(Json::as_arr).unwrap();
        for entry in results {
            let node = entry.get("node").and_then(Json::as_u64).unwrap();
            let single = client.round_trip(&format!(
                r#"{{"cmd":"nearest","node":{node},"k":4,"mode":"ann","nprobe":1000}}"#
            ));
            assert_eq!(
                entry.get("neighbours"),
                single.get("neighbours"),
                "node {node} (quantize={quantize})\n{batch}\n{single}"
            );
        }

        // Stats surface the storage mode the server was started with.
        let stats = client.round_trip(r#"{"cmd":"stats"}"#);
        let ann_stats = stats.get("ann").expect("ann stats present");
        let expected = if quantize { "sq8" } else { "f32" };
        assert_eq!(
            ann_stats.get("storage").and_then(Json::as_str),
            Some(expected),
            "{stats}"
        );
        assert!(
            ann_stats
                .get("index_bytes")
                .and_then(Json::as_u64)
                .is_some_and(|b| b > 0),
            "{stats}"
        );

        let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
        assert!(is_ok(&bye));
        server.join();
    }
}

#[test]
fn nearest_batch_without_ann_is_unavailable() {
    let server = Server::bind(tiny_session(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr());
    client.round_trip(r#"{"cmd":"ingest","edges":[[0,1,0],[1,2,0]]}"#);
    client.round_trip(r#"{"cmd":"flush"}"#);

    // Exact batches work without --ann...
    let batch = client.round_trip(r#"{"cmd":"nearest_batch","nodes":[0,1]}"#);
    assert!(is_ok(&batch), "{batch}");
    // ...ANN batches are a request-level structured unavailable.
    let batch = client.round_trip(r#"{"cmd":"nearest_batch","nodes":[0,1],"mode":"ann"}"#);
    assert_eq!(kind(&batch), Some("unavailable"), "{batch}");

    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye));
    server.join();
}
