//! End-to-end smoke test over a real `TcpStream`: spawn the server,
//! speak the wire protocol — ingest, flush, query, nearest, stats,
//! errors — and shut it down cleanly.

use glodyne::IvfConfig;
use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_serve::json::Json;
use glodyne_serve::{json, AnnSettings, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn tiny_session() -> EmbedderSession<GloDyNE> {
    let cfg = GloDyNEConfig {
        alpha: 0.5,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 8,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    };
    EmbedderSession::new(GloDyNE::new(cfg).unwrap(), EpochPolicy::Manual).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Send one request line, read one response line, parse it.
    fn round_trip(&mut self, request: &str) -> Json {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {key} in {v}"))
}

fn is_ok(v: &Json) -> bool {
    v.get("ok") == Some(&Json::Bool(true))
}

#[test]
fn full_wire_session() {
    let server = Server::bind(tiny_session(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr);

    // Fresh server: epoch 0, nothing embedded.
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert!(is_ok(&stats), "{stats}");
    assert_eq!(field_u64(&stats, "epoch"), 0);
    assert_eq!(field_u64(&stats, "nodes"), 0);

    // Queries against the empty epoch are structured not_found errors.
    let miss = client.round_trip(r#"{"cmd":"query","node":0}"#);
    assert!(!is_ok(&miss));
    assert_eq!(miss.get("kind").and_then(Json::as_str), Some("not_found"));

    // Ingest a path graph, commit it.
    let ingest =
        client.round_trip(r#"{"cmd":"ingest","edges":[[0,1,0],[1,2,0],[2,3,0],[3,4,0],[4,5,0]]}"#);
    assert!(is_ok(&ingest), "{ingest}");
    assert_eq!(field_u64(&ingest, "accepted"), 5);
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");
    assert_eq!(flush.get("stepped"), Some(&Json::Bool(true)));
    assert_eq!(field_u64(&flush, "epoch"), 1);

    // Reads now answer from epoch 1.
    let q = client.round_trip(r#"{"cmd":"query","node":2}"#);
    assert!(is_ok(&q), "{q}");
    assert_eq!(field_u64(&q, "epoch"), 1);
    let vector = q.get("vector").and_then(Json::as_arr).unwrap();
    assert_eq!(vector.len(), 8);

    let near = client.round_trip(r#"{"cmd":"nearest","node":2,"k":3}"#);
    assert!(is_ok(&near), "{near}");
    assert_eq!(near.get("mode").and_then(Json::as_str), Some("exact"));
    let neighbours = near.get("neighbours").and_then(Json::as_arr).unwrap();
    assert!(!neighbours.is_empty() && neighbours.len() <= 3);
    for pair in neighbours {
        let pair = pair.as_arr().unwrap();
        assert_ne!(pair[0].as_u64(), Some(2), "self must be excluded");
    }

    // ANN mode on a server started without --ann is a structured
    // `unavailable` error, and the stats ann block is null.
    let ann = client.round_trip(r#"{"cmd":"nearest","node":2,"mode":"ann"}"#);
    assert!(!is_ok(&ann));
    assert_eq!(ann.get("kind").and_then(Json::as_str), Some("unavailable"));
    // ...but an *unknown* node is still `not_found` first, exactly as
    // pre-ANN clients observed it (regression: the existence check
    // precedes the capability check).
    let ann_miss = client.round_trip(r#"{"cmd":"nearest","node":404,"mode":"ann"}"#);
    assert_eq!(
        ann_miss.get("kind").and_then(Json::as_str),
        Some("not_found"),
        "{ann_miss}"
    );
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert_eq!(stats.get("ann"), Some(&Json::Null), "{stats}");

    // Malformed requests keep the connection alive with structured
    // errors.
    let bad = client.round_trip("{nope");
    assert_eq!(bad.get("kind").and_then(Json::as_str), Some("bad_request"));
    let bad = client.round_trip(r#"{"cmd":"ingest","edges":[[0]]}"#);
    assert_eq!(bad.get("kind").and_then(Json::as_str), Some("bad_request"));

    // An oversized line is refused and the stream resynchronises.
    let huge = format!(
        r#"{{"cmd":"query","pad":"{}","node":2}}"#,
        "x".repeat(glodyne_serve::protocol::MAX_LINE_BYTES)
    );
    let too_large = client.round_trip(&huge);
    assert_eq!(
        too_large.get("kind").and_then(Json::as_str),
        Some("too_large")
    );
    let q = client.round_trip(r#"{"cmd":"query","node":2}"#);
    assert!(is_ok(&q), "connection must survive an oversized line: {q}");

    // A second concurrent client sees the same epoch.
    let mut other = Client::connect(addr);
    let stats = other.round_trip(r#"{"cmd":"stats"}"#);
    assert_eq!(field_u64(&stats, "epoch"), 1);
    assert_eq!(field_u64(&stats, "events_accepted"), 5);

    // Graceful shutdown: acknowledged, then the server exits.
    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye), "{bye}");
    let served = server.join();
    assert!(served >= 2, "two real connections were accepted");

    // Connections made after shutdown are refused (the listener is
    // closed once join returns).
    assert!(TcpStream::connect(addr).is_err());
}

#[test]
fn ann_mode_over_the_wire() {
    let cfg = ServerConfig {
        ann: Some(AnnSettings {
            config: IvfConfig {
                cells: 4,
                ..Default::default()
            },
            default_nprobe: 2,
        }),
        ..ServerConfig::default()
    };
    let server = Server::bind(tiny_session(), "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.local_addr());

    client.round_trip(
        r#"{"cmd":"ingest","edges":[[0,1,0],[1,2,0],[2,3,0],[3,4,0],[4,5,0],[5,6,0],[6,7,0]]}"#,
    );
    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");

    // ANN at full probe width must agree exactly with the exact path
    // (shared similarity kernel, shared merge order).
    let exact = client.round_trip(r#"{"cmd":"nearest","node":3,"k":4}"#);
    assert!(is_ok(&exact), "{exact}");
    let ann = client.round_trip(r#"{"cmd":"nearest","node":3,"k":4,"mode":"ann","nprobe":4}"#);
    assert!(is_ok(&ann), "{ann}");
    assert_eq!(ann.get("mode").and_then(Json::as_str), Some("ann"));
    assert_eq!(field_u64(&ann, "nprobe"), 4);
    assert_eq!(
        ann.get("neighbours"),
        exact.get("neighbours"),
        "full probe == exact scan:\n{ann}\n{exact}"
    );

    // Default nprobe comes from the server settings.
    let ann = client.round_trip(r#"{"cmd":"nearest","node":3,"mode":"ann"}"#);
    assert!(is_ok(&ann), "{ann}");
    assert_eq!(field_u64(&ann, "nprobe"), 2, "server default nprobe");

    // An oversized request nprobe is clamped to the cell count and the
    // response echoes the *effective* width, not the request.
    let ann = client.round_trip(r#"{"cmd":"nearest","node":3,"mode":"ann","nprobe":1000}"#);
    assert!(is_ok(&ann), "{ann}");
    assert_eq!(field_u64(&ann, "nprobe"), 4, "clamped to cells");

    // Stats surface the published index's parameters and build cost.
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    let ann_stats = stats.get("ann").expect("ann stats present");
    assert_eq!(ann_stats.get("cells").and_then(Json::as_u64), Some(4));
    assert_eq!(
        ann_stats.get("nprobe_default").and_then(Json::as_u64),
        Some(2)
    );
    assert!(
        ann_stats.get("build_ms").and_then(Json::as_f64).is_some(),
        "{stats}"
    );

    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye));
    server.join();

    // Degenerate ANN settings are rejected at bind, before any socket
    // or trainer exists.
    let bad = ServerConfig {
        ann: Some(AnnSettings {
            config: IvfConfig {
                cells: 0,
                ..Default::default()
            },
            default_nprobe: 2,
        }),
        ..ServerConfig::default()
    };
    assert!(matches!(
        Server::bind(tiny_session(), "127.0.0.1:0", bad),
        Err(glodyne_serve::ServeError::Config(_))
    ));
}

#[test]
fn writes_after_shutdown_are_structured_errors() {
    let server = Server::bind(tiny_session(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    a.round_trip(r#"{"cmd":"ingest","edges":[[0,1,0],[1,2,0],[2,3,0]]}"#);
    a.round_trip(r#"{"cmd":"flush"}"#);

    // Client A shuts the server down; client B's connection stays open.
    let bye = a.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye));
    let served = server.join();
    assert_eq!(served, 2);

    // B can still read from the final epoch, but writes are refused.
    let q = b.round_trip(r#"{"cmd":"query","node":1}"#);
    assert!(is_ok(&q), "reads survive shutdown: {q}");
    assert_eq!(field_u64(&q, "epoch"), 1);
    let ingest = b.round_trip(r#"{"cmd":"ingest","edges":[[7,8,1]]}"#);
    assert_eq!(
        ingest.get("kind").and_then(Json::as_str),
        Some("shutting_down"),
        "{ingest}"
    );
    let flush = b.round_trip(r#"{"cmd":"flush"}"#);
    assert_eq!(
        flush.get("kind").and_then(Json::as_str),
        Some("shutting_down")
    );
}

#[test]
fn sharded_wire_session() {
    use glodyne_shard::ShardConfig;
    // Two communities + a bridge, served by a 2-shard backend over the
    // same wire protocol.
    let sessions = vec![tiny_session(), tiny_session()];
    let server = Server::bind_sharded(
        sessions,
        ShardConfig {
            shards: 2,
            min_partition_nodes: 8,
            ..Default::default()
        },
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr());

    // Fresh sharded server: the shards array is present (and empty-ish),
    // pre-sharding fields intact.
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert!(is_ok(&stats), "{stats}");
    let shards = stats.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), 2);

    // Ingest two 6-cliques plus one bridge.
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 6;
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push(format!("[{},{},0]", base + i, base + j));
            }
        }
    }
    edges.push("[0,6,0]".to_string());
    let ingest = client.round_trip(&format!(
        r#"{{"cmd":"ingest","edges":[{}]}}"#,
        edges.join(",")
    ));
    assert!(is_ok(&ingest), "{ingest}");
    assert_eq!(field_u64(&ingest, "accepted"), edges.len() as u64);

    let flush = client.round_trip(r#"{"cmd":"flush"}"#);
    assert!(is_ok(&flush), "{flush}");
    assert_eq!(flush.get("stepped"), Some(&Json::Bool(true)));

    // Every node queries through its owner shard.
    for n in 0..12u32 {
        let q = client.round_trip(&format!(r#"{{"cmd":"query","node":{n}}}"#));
        assert!(is_ok(&q), "node {n}: {q}");
    }
    // Global fan-out nearest: well-formed, self-excluded.
    let near = client.round_trip(r#"{"cmd":"nearest","node":2,"k":4}"#);
    assert!(is_ok(&near), "{near}");
    let hits = near.get("neighbours").and_then(Json::as_arr).unwrap();
    assert!(!hits.is_empty() && hits.len() <= 4);

    // Unknown node: structured not_found, same as unsharded.
    let miss = client.round_trip(r#"{"cmd":"query","node":404}"#);
    assert_eq!(miss.get("kind").and_then(Json::as_str), Some("not_found"));
    // ANN mode without --ann: structured unavailable, same as unsharded.
    let ann = client.round_trip(r#"{"cmd":"nearest","node":2,"mode":"ann"}"#);
    assert_eq!(ann.get("kind").and_then(Json::as_str), Some("unavailable"));
    // Unknown node in ANN mode: not_found wins over unavailable.
    let ann_miss = client.round_trip(r#"{"cmd":"nearest","node":404,"mode":"ann"}"#);
    assert_eq!(
        ann_miss.get("kind").and_then(Json::as_str),
        Some("not_found")
    );

    // Stats now carry per-shard epochs/nodes and the live node count.
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert_eq!(field_u64(&stats, "nodes"), 12);
    let shards = stats.get("shards").and_then(Json::as_arr).unwrap();
    for sh in shards {
        assert!(sh.get("epoch").is_some());
        assert!(sh.get("nodes").is_some());
        assert!(sh.get("queue_depth").is_some());
        assert!(sh.get("ann_build_ms").is_some());
    }

    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(is_ok(&bye));
    server.join();
}
