//! Property coverage for the chaos harness: *random* failpoint
//! schedules — fsync/append errors, enqueue sheds, trainer delays —
//! driven against a live serving session must never panic the process,
//! reads must always answer, bounded writes must return within their
//! deadline, and a post-kill recovery must land on exactly the acked
//! event prefix.
//!
//! The failpoint registry is process-global, so every generated case
//! arms it under one lock and disarms on the way out (failure paths
//! included) via the [`Armed`] guard.

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_chaos::{sites, Action, Rule};
use glodyne_durable::{DurableConfig, DurableSession, FsyncPolicy};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use glodyne_serve::{ServeError, ServingSession};
use proptest::prelude::*;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl Armed<'_> {
    fn lock() -> Self {
        let guard = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        glodyne_chaos::disarm();
        Armed(guard)
    }
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        glodyne_chaos::disarm();
    }
}

fn tiny_model() -> GloDyNE {
    let cfg = GloDyNEConfig {
        alpha: 0.5,
        walk: WalkConfig {
            walks_per_node: 1,
            walk_length: 6,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 4,
            window: 2,
            negatives: 1,
            epochs: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    };
    GloDyNE::new(cfg).unwrap()
}

/// One generated failpoint: (site, rule) decoded from small integers so
/// the strategy stays a plain tuple. Only error/delay/shed actions —
/// stalls and panics get deterministic dedicated tests (`chaos.rs`,
/// session unit tests) because their recovery is part of the contract,
/// not noise to fuzz over.
fn decode(site: u8, rule: u8, n: u8) -> (&'static str, Rule) {
    let site = match site % 4 {
        0 => sites::WAL_FSYNC,
        1 => sites::WAL_APPEND,
        2 => sites::INGEST_ENQUEUE,
        _ => sites::TRAINER_STEP,
    };
    let n = u64::from(n % 4) + 1;
    let action = if site == sites::TRAINER_STEP {
        Action::Delay(n) // an error channel does not exist there
    } else {
        Action::Fail
    };
    let rule = match rule % 3 {
        0 => Rule::Always(action),
        1 => Rule::Times(action, n),
        _ => Rule::EveryNth(action, n),
    };
    (site, rule)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any schedule of injected errors, sheds, and delays: no panic
    /// escapes, every read answers, bounded writes return promptly, and
    /// after disarm the session flushes cleanly.
    #[test]
    fn random_schedules_never_panic_and_reads_always_answer(
        schedule in prop::collection::vec((0u8..4, 0u8..3, 0u8..8), 0..4),
        ops in prop::collection::vec((0u8..3, 0u8..64), 4..24),
    ) {
        let _armed = Armed::lock();
        let session =
            EmbedderSession::new(tiny_model(), EpochPolicy::EveryNEvents(8)).unwrap();
        let serving = ServingSession::spawn(session, 4);
        // Seed one committed epoch before the chaos starts.
        for i in 0..6u32 {
            serving.ingest(&[GraphEvent::add_edge(NodeId(i), NodeId(i + 1), 0)]).unwrap();
        }
        serving.flush().unwrap();

        for (site, rule, n) in &schedule {
            let (site, rule) = decode(*site, *rule, *n);
            glodyne_chaos::set(site, rule);
        }

        let mut t = 1u64;
        for (op, x) in &ops {
            match op % 3 {
                0 => {
                    // Shed or accept — either way a structured result.
                    let ev = GraphEvent::add_edge(NodeId(u32::from(*x)), NodeId(u32::from(*x) + 1), t);
                    t += 1;
                    match serving.ingest_fast_fail(&[ev]) {
                        Ok(_) | Err(ServeError::Overloaded { .. }) => {}
                        Err(other) => prop_assert!(false, "unstructured ingest failure: {other}"),
                    }
                }
                1 => {
                    // Bounded flush: any outcome, but within the bound.
                    let started = Instant::now();
                    let _ = serving.flush_deadline(Instant::now() + Duration::from_millis(200));
                    prop_assert!(
                        started.elapsed() < Duration::from_secs(10),
                        "deadline flush overstayed: {:?}",
                        started.elapsed()
                    );
                }
                _ => {
                    // Reads always answer, instantly, from the epoch.
                    let started = Instant::now();
                    let (epoch, _) = serving.query(NodeId(u32::from(*x % 8)));
                    prop_assert!(epoch >= 1, "published epoch lost");
                    let (_, hits) = serving.nearest(NodeId(0), 3);
                    prop_assert!(hits.len() <= 3);
                    prop_assert!(
                        started.elapsed() < Duration::from_secs(5),
                        "read blocked behind chaos: {:?}",
                        started.elapsed()
                    );
                }
            }
        }

        // Disarmed, the session is healthy again: a write-then-flush
        // round-trip succeeds and health reports clean.
        glodyne_chaos::disarm();
        serving
            .ingest(&[GraphEvent::add_edge(NodeId(90), NodeId(91), t)])
            .unwrap();
        serving.flush().unwrap();
        let health = serving.health();
        prop_assert!(!health.degraded, "degraded after full recovery");
        prop_assert!(health.trainer_alive);
        serving.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill-under-chaos recovery: random append failures, fsync delays,
    /// and snapshot failures while a durable lineage ingests, then a
    /// drop without finalize. Recovery must (a) succeed, (b) land on
    /// exactly the acked events, (c) reproduce the acked prefix state
    /// bit-for-bit against a chaos-free control run.
    #[test]
    fn post_kill_recovery_is_exactly_the_acked_prefix(
        (append_n, snap_always, fsync_delay_n) in (0u8..5, 0u8..2, 1u8..4),
        count in 8usize..28,
    ) {
        let _armed = Armed::lock();
        let dir = std::env::temp_dir().join(format!(
            "glodyne-chaos-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let dcfg = DurableConfig {
            // Sync inside every append: whatever was acked is durable,
            // so the acked set and the WAL contents coincide exactly.
            fsync: FsyncPolicy::EveryNEvents(1),
            snapshot_every: 2,
            ..DurableConfig::default()
        };
        let policy = EpochPolicy::EveryNEvents(4);
        let session = EmbedderSession::new(tiny_model(), policy).unwrap();
        let mut durable = DurableSession::create(&dir, session, dcfg).unwrap();

        // Arm after creation (the genesis snapshot must exist).
        // Append failures fire *before* any byte is written, so a
        // rejected event is cleanly absent from both the WAL and the
        // live session — no torn gray zone in this schedule.
        if append_n > 0 {
            glodyne_chaos::set(sites::WAL_APPEND, Rule::EveryNth(Action::Fail, u64::from(append_n)));
        }
        if snap_always == 1 {
            glodyne_chaos::set(sites::SNAPSHOT_WRITE, Rule::Always(Action::Fail));
        }
        glodyne_chaos::set(
            sites::WAL_FSYNC,
            Rule::EveryNth(Action::Delay(1), u64::from(fsync_delay_n)),
        );

        let events: Vec<GraphEvent> = (0..count as u32)
            .map(|i| GraphEvent::add_edge(NodeId(i % 9), NodeId((i + 1) % 9), u64::from(i)))
            .collect();
        let mut acked: Vec<GraphEvent> = Vec::new();
        let mut acked_seq = 0u64;
        for (i, event) in events.iter().enumerate() {
            let seq = i as u64 + 1;
            if durable.apply(seq, *event).is_ok() {
                acked.push(*event);
                acked_seq = seq;
            }
            let _ = durable.maybe_snapshot();
        }
        drop(durable); // kill: no finalize, no final snapshot

        glodyne_chaos::disarm();
        let recovered = DurableSession::recover(&dir, dcfg, policy, false, tiny_model);
        prop_assert!(recovered.is_ok(), "recovery failed: {:?}", recovered.err());
        let (recovered, _report) = recovered.unwrap();
        prop_assert_eq!(recovered.last_seq(), acked_seq, "recovery drifted off the acked prefix");

        // Bit-exact: replaying the acked events on a clean session
        // yields the same embedding the recovered lineage serves.
        let mut control = EmbedderSession::new(tiny_model(), policy).unwrap();
        for event in &acked {
            control.apply(*event);
        }
        for node in 0..9u32 {
            prop_assert_eq!(
                recovered.session().query(NodeId(node)),
                control.query(NodeId(node)),
                "node {} diverged from the acked prefix", node
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
