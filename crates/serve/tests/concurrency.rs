//! The acceptance proof for the epoch swap: while the trainer is
//! provably *mid-step*, reads answer instantly from the previous epoch;
//! after the step commits, the epoch id in `stats` advances and reads
//! see the new state.

use glodyne::{EmbedderSession, EpochPolicy, StepContext, StepReport};
use glodyne_embed::{DynamicEmbedder, Embedding};
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use glodyne_serve::ServingSession;
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

/// An embedder whose `step` blocks until the test releases it: sends
/// on `entered` when a step starts, then waits for a token on `gate`
/// (one token per step). The embedding stamps each node's vector with
/// the step number, so tests can tell epochs apart.
struct GatedEmbedder {
    entered: Sender<()>,
    gate: Receiver<()>,
    steps: usize,
    emb: Embedding,
}

impl DynamicEmbedder for GatedEmbedder {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let _ = self.entered.send(());
        self.gate.recv().expect("test must hold the gate sender");
        self.steps += 1;
        for l in 0..ctx.curr.num_nodes() {
            self.emb
                .set(ctx.curr.node_id(l), &[self.steps as f32, l as f32]);
        }
        StepReport {
            selected: ctx.curr.num_nodes(),
            ..StepReport::default()
        }
    }

    fn embedding(&self) -> Embedding {
        self.emb.clone()
    }

    fn name(&self) -> &'static str {
        "gated"
    }
}

/// A gated serving session plus the test's ends of both channels.
fn gated_serving(policy: EpochPolicy, queue: usize) -> (ServingSession, Sender<()>, Receiver<()>) {
    let (entered_tx, entered_rx) = std::sync::mpsc::channel();
    let (gate_tx, gate_rx) = std::sync::mpsc::channel();
    let embedder = GatedEmbedder {
        entered: entered_tx,
        gate: gate_rx,
        steps: 0,
        emb: Embedding::new(2),
    };
    let session = EmbedderSession::new(embedder, policy)
        .unwrap()
        .keep_full_graph();
    (ServingSession::spawn(session, queue), gate_tx, entered_rx)
}

fn chain(n: u32, t: u64) -> Vec<GraphEvent> {
    (0..n)
        .map(|i| GraphEvent::add_edge(NodeId(i), NodeId(i + 1), t))
        .collect()
}

#[test]
fn reads_never_wait_on_a_training_step() {
    let (serving, gate, entered) = gated_serving(EpochPolicy::Manual, 64);

    // Epoch 1: ingest, pre-release the step token, flush to completion.
    serving.ingest(&chain(4, 0)).unwrap();
    gate.send(()).unwrap();
    let outcome = serving.flush().unwrap();
    assert!(outcome.stepped);
    entered.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(serving.stats().epoch, 1);
    let (epoch, v) = serving.query(NodeId(0));
    assert_eq!(epoch, 1);
    assert_eq!(v.unwrap()[0], 1.0, "epoch-1 vectors are stamped `1`");

    // Epoch 2: enqueue new events and a flush, but do NOT release the
    // gate yet — the trainer is provably stuck mid-step.
    serving.ingest(&chain(6, 1)).unwrap();
    std::thread::scope(|scope| {
        let flush_handle = scope.spawn(|| serving.flush().unwrap());
        entered
            .recv_timeout(Duration::from_secs(10))
            .expect("trainer entered the step");

        // The trainer is blocked inside `step`. Reads must return
        // immediately, answered from epoch 1.
        let t0 = Instant::now();
        let (epoch, v) = serving.query(NodeId(0));
        let (epoch_n, near) = serving.nearest(NodeId(0), 3);
        let stats = serving.stats();
        let elapsed = t0.elapsed();

        assert_eq!(epoch, 1, "read served from the previous epoch");
        assert_eq!(epoch_n, 1);
        assert_eq!(v.unwrap()[0], 1.0, "previous epoch's values");
        assert!(!near.is_empty());
        assert_eq!(stats.epoch, 1);
        assert!(
            elapsed < Duration::from_secs(5),
            "reads must not wait for the in-flight step (took {elapsed:?})"
        );
        // Nodes 5..=6 only exist in the still-training epoch 2.
        assert_eq!(serving.query(NodeId(6)).1, None);

        // Release the step; the flush ack is the visibility barrier.
        gate.send(()).unwrap();
        let outcome = flush_handle.join().unwrap();
        assert!(outcome.stepped);
        assert_eq!(outcome.epoch, 2);
    });

    // After the flush: epoch advanced, new state visible.
    assert_eq!(serving.stats().epoch, 2, "epoch id advances after flush");
    let (epoch, v) = serving.query(NodeId(6));
    assert_eq!(epoch, 2);
    assert_eq!(v.unwrap()[0], 2.0, "epoch-2 vectors are stamped `2`");
    serving.shutdown();
}

#[test]
fn full_queue_back_pressures_ingest_without_blocking_reads() {
    // EveryNEvents(2): the trainer stalls inside a policy-triggered
    // step while the tiny queue fills behind it.
    let (serving, gate, entered) = gated_serving(EpochPolicy::EveryNEvents(2), 2);

    std::thread::scope(|scope| {
        let producer = scope.spawn(|| {
            // Events 1–2 trigger a step (the trainer blocks in it);
            // events 3–4 fill the depth-2 queue; event 5's send must
            // block until the gate opens — that is the back-pressure.
            serving.ingest(&chain(8, 0)).unwrap()
        });
        entered
            .recv_timeout(Duration::from_secs(10))
            .expect("trainer entered the policy step");
        std::thread::sleep(Duration::from_millis(50));
        assert!(!producer.is_finished(), "producer is back-pressured");

        // Reads still answer instantly from epoch 0.
        let t0 = Instant::now();
        let stats = serving.stats();
        assert_eq!(stats.epoch, 0);
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(stats.queue_depth >= 2, "queue holds the backlog");

        // Release all four policy steps (8 events / every 2).
        for _ in 0..4 {
            gate.send(()).unwrap();
        }
        for _ in 0..3 {
            entered.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(producer.join().unwrap(), 8);
    });

    // All four boundaries committed; nothing left pending.
    let outcome = serving.flush().unwrap();
    assert!(!outcome.stepped);
    assert_eq!(outcome.epoch, 4);
    assert_eq!(serving.stats().epoch, 4);
    serving.shutdown();
}
