//! Property tests for the multilevel partitioner: Definition 5 invariants.

use glodyne_graph::id::{Edge, NodeId};
use glodyne_graph::Snapshot;
use glodyne_partition::{partition, PartitionConfig};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Snapshot> {
    prop::collection::vec((0u32..60, 0u32..60), 1..200).prop_map(|pairs| {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect();
        Snapshot::from_edges(&edges, &[])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Non-overlapping and covering: every node gets exactly one part id
    /// in range (V = ∪_k V_k, V_m ∩ V_n = ∅).
    #[test]
    fn partition_is_a_cover((g, k) in (arb_graph(), 1usize..12)) {
        let p = partition(&g, &PartitionConfig::with_k(k));
        prop_assert_eq!(p.assignment.len(), g.num_nodes());
        for &part in &p.assignment {
            prop_assert!((part as usize) < p.k.max(1));
        }
    }

    /// Every part is non-empty (needed so Step 2 can select one
    /// representative per sub-network).
    #[test]
    fn parts_are_non_empty((g, k) in (arb_graph(), 1usize..12)) {
        let p = partition(&g, &PartitionConfig::with_k(k));
        if g.num_nodes() > 0 {
            for (i, part) in p.parts().iter().enumerate() {
                prop_assert!(!part.is_empty(), "part {i} empty with k={}", p.k);
            }
        }
    }

    /// Balance: no part exceeds (1+ε)|V|/K by more than integer rounding.
    #[test]
    fn balance_bound_holds((g, k) in (arb_graph(), 2usize..10)) {
        let eps = 0.2;
        let cfg = PartitionConfig { k, epsilon: eps, ..Default::default() };
        let p = partition(&g, &cfg);
        let n = g.num_nodes();
        if n >= p.k && p.k > 1 {
            let bound = ((1.0 + eps) * n as f64 / p.k as f64).ceil() as usize + 1;
            for part in p.parts() {
                prop_assert!(part.len() <= bound,
                    "part size {} > bound {bound} (n={n}, k={})", part.len(), p.k);
            }
        }
    }

    /// Determinism: identical config and graph produce identical output.
    #[test]
    fn deterministic((g, k) in (arb_graph(), 1usize..8)) {
        let cfg = PartitionConfig::with_k(k);
        let p1 = partition(&g, &cfg);
        let p2 = partition(&g, &cfg);
        prop_assert_eq!(p1.assignment, p2.assignment);
    }
}
