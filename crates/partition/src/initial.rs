//! Initial partitioning of the coarsest graph: greedy graph growing.
//!
//! "A K-way partition algorithm is applied on the smallest abstract
//! network to get the initial partition of K sub-networks" (§4.1.1).
//! Greedy graph growing (GGGP): grow each region from a seed by
//! repeatedly absorbing the frontier node with the strongest connection
//! to the region, stopping when the region reaches its weight quota.

use crate::wgraph::WGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Produce a `k`-way assignment of `g`'s nodes (values in `0..k`),
/// aiming for per-part weight at most `(1+epsilon)·W/k`.
///
/// Any node left unassigned after region growing (disconnected leftovers)
/// is placed in the lightest part, so the result always covers all nodes.
pub fn greedy_growing(g: &WGraph, k: usize, epsilon: f64, rng: &mut impl Rng) -> Vec<u32> {
    const UNASSIGNED: u32 = u32::MAX;
    let n = g.len();
    let mut assignment = vec![UNASSIGNED; n];
    if n == 0 {
        return assignment;
    }
    let total = g.total_weight();
    let quota = (total as f64 / k as f64).ceil();
    let cap = ((1.0 + epsilon) * total as f64 / k as f64).floor().max(1.0) as u64;
    let mut loads = vec![0u64; k];

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut order_pos = 0usize;

    // connection[v] = total edge weight from v into the region being grown
    let mut connection = vec![0u64; n];
    let mut frontier: Vec<u32> = Vec::new();

    for part in 0..k as u32 {
        // Pick an unassigned seed (prefer shuffled order).
        let seed = loop {
            if order_pos >= order.len() {
                break None;
            }
            let cand = order[order_pos];
            order_pos += 1;
            if assignment[cand as usize] == UNASSIGNED {
                break Some(cand);
            }
        };
        let Some(seed) = seed else { break };

        frontier.clear();
        frontier.push(seed);
        while let Some(pick_idx) = frontier
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| connection[v as usize])
            .map(|(i, _)| i)
        {
            let v = frontier.swap_remove(pick_idx);
            if assignment[v as usize] != UNASSIGNED {
                continue;
            }
            let w = g.vwgt[v as usize];
            if loads[part as usize] + w > cap && loads[part as usize] > 0 {
                continue; // too heavy for this part; leave for later parts
            }
            assignment[v as usize] = part;
            loads[part as usize] += w;
            if loads[part as usize] as f64 >= quota {
                break;
            }
            for &(u, ew) in &g.adj[v as usize] {
                if assignment[u as usize] == UNASSIGNED {
                    if connection[u as usize] == 0 {
                        frontier.push(u);
                    }
                    connection[u as usize] += ew;
                }
            }
        }
        // Reset connection values touched during this growth.
        for &v in &frontier {
            connection[v as usize] = 0;
        }
        for v in 0..n {
            connection[v] = 0;
        }
    }

    // Sweep up leftovers into the lightest parts.
    for v in 0..n {
        if assignment[v] == UNASSIGNED {
            let lightest = (0..k).min_by_key(|&p| loads[p]).unwrap();
            assignment[v] = lightest as u32;
            loads[lightest] += g.vwgt[v];
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};
    use glodyne_graph::Snapshot;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(n: u32) -> WGraph {
        let edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        WGraph::from_snapshot(&Snapshot::from_edges(&edges, &[]))
    }

    #[test]
    fn covers_all_nodes() {
        let g = ring(20);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = greedy_growing(&g, 4, 0.1, &mut rng);
        assert!(a.iter().all(|&p| p < 4));
    }

    #[test]
    fn roughly_balanced_on_uniform_ring() {
        let g = ring(40);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = greedy_growing(&g, 4, 0.1, &mut rng);
        let mut sizes = [0usize; 4];
        for &p in &a {
            sizes[p as usize] += 1;
        }
        for s in sizes {
            assert!((5..=15).contains(&s), "sizes {sizes:?} badly unbalanced");
        }
    }

    #[test]
    fn regions_are_mostly_contiguous_on_ring() {
        // On a ring, GGGP regions should be arcs: the number of cut edges
        // should be about k (here 4), far below random (~n/2).
        let g = ring(40);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = greedy_growing(&g, 4, 0.1, &mut rng);
        let mut cut = 0;
        for v in 0..40u32 {
            let u = (v + 1) % 40;
            if a[v as usize] != a[u as usize] {
                cut += 1;
            }
        }
        assert!(cut <= 12, "ring cut {cut} too high for grown regions");
    }

    #[test]
    fn handles_disconnected_graph() {
        let edges = vec![
            Edge::new(NodeId(0), NodeId(1)),
            Edge::new(NodeId(2), NodeId(3)),
            Edge::new(NodeId(4), NodeId(5)),
        ];
        let g = WGraph::from_snapshot(&Snapshot::from_edges(&edges, &[]));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = greedy_growing(&g, 3, 0.2, &mut rng);
        assert!(a.iter().all(|&p| p < 3));
    }
}
