//! Coarsening phase: heavy-edge matching (HEM).
//!
//! "The original network is recursively transformed into a series of
//! smaller and smaller abstract networks, via collapsing nodes ... until
//! the abstract network is small enough" (§4.1.1). HEM visits nodes in
//! random order and matches each unmatched node with its unmatched
//! neighbour of maximum edge weight, which empirically preserves cut
//! structure well (Karypis & Kumar 1998).

use crate::wgraph::WGraph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// One coarsening level: the coarse graph plus the fine→coarse node map.
#[derive(Debug)]
pub struct Level {
    /// The coarse graph produced at this level.
    pub graph: WGraph,
    /// For each fine node, the coarse node it collapsed into.
    pub map: Vec<u32>,
}

/// The full coarsening hierarchy. `levels[0].graph` is one step coarser
/// than the input; the last level is the coarsest.
#[derive(Debug)]
pub struct Hierarchy {
    /// The original (finest) graph.
    pub finest: WGraph,
    /// Successive coarsening levels, finest-first.
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// The coarsest graph (the finest if no coarsening happened).
    pub fn coarsest(&self) -> &WGraph {
        self.levels.last().map(|l| &l.graph).unwrap_or(&self.finest)
    }

    /// Project a coarsest-level assignment back to the finest graph,
    /// invoking `refine_hook(graph, assignment)` at every intermediate
    /// level (including the finest), mirroring METIS's uncoarsening
    /// phase.
    pub fn project_to_finest(
        &self,
        mut assignment: Vec<u32>,
        mut refine_hook: impl FnMut(&WGraph, &mut Vec<u32>),
    ) -> Vec<u32> {
        // Walk levels from coarsest-1 down to the finest graph.
        for i in (0..self.levels.len()).rev() {
            let map = &self.levels[i].map;
            let fine_graph = if i == 0 {
                &self.finest
            } else {
                &self.levels[i - 1].graph
            };
            let mut fine_assignment = vec![0u32; map.len()];
            for (fine, &coarse) in map.iter().enumerate() {
                fine_assignment[fine] = assignment[coarse as usize];
            }
            refine_hook(fine_graph, &mut fine_assignment);
            assignment = fine_assignment;
        }
        assignment
    }
}

/// Run one round of heavy-edge matching and build the coarse graph.
/// Returns `None` if matching failed to shrink the graph by at least 5%
/// (e.g. star graphs where everything is matched to one hub).
fn coarsen_once(g: &WGraph, rng: &mut impl Rng) -> Option<Level> {
    const UNMATCHED: u32 = u32::MAX;
    let n = g.len();
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut best: Option<(u32, u64)> = None;
        for &(u, w) in &g.adj[v as usize] {
            if mate[u as usize] == UNMATCHED && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }

    // Assign coarse ids: each pair (or singleton) becomes one node.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n {
        if map[v] != UNMATCHED {
            continue;
        }
        let m = mate[v] as usize;
        map[v] = next;
        map[m] = next; // m == v for singletons
        next += 1;
    }
    let coarse_n = next as usize;
    if coarse_n as f64 > 0.95 * n as f64 {
        return None;
    }

    // Build the coarse graph: sum vertex weights, merge parallel edges.
    let mut vwgt = vec![0u64; coarse_n];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vwgt[v];
    }
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); coarse_n];
    {
        let mut acc: HashMap<u32, u64> = HashMap::new();
        // Process fine nodes grouped by coarse id.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); coarse_n];
        for v in 0..n {
            members[map[v] as usize].push(v as u32);
        }
        for (c, ms) in members.iter().enumerate() {
            acc.clear();
            for &v in ms {
                for &(u, w) in &g.adj[v as usize] {
                    let cu = map[u as usize];
                    if cu as usize != c {
                        *acc.entry(cu).or_insert(0) += w;
                    }
                }
            }
            let mut list: Vec<(u32, u64)> = acc.iter().map(|(&u, &w)| (u, w)).collect();
            list.sort_unstable();
            adj[c] = list;
        }
    }

    Some(Level {
        graph: WGraph { vwgt, adj },
        map,
    })
}

/// Coarsen until at most `stop_at` nodes remain or shrinkage stalls.
pub fn coarsen(finest: WGraph, stop_at: usize, rng: &mut impl Rng) -> Hierarchy {
    let mut levels = Vec::new();
    let mut current = finest.clone();
    while current.len() > stop_at {
        match coarsen_once(&current, rng) {
            Some(level) => {
                current = level.graph.clone();
                levels.push(level);
            }
            None => break,
        }
    }
    Hierarchy { finest, levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};
    use glodyne_graph::Snapshot;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(n: u32) -> WGraph {
        let edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        WGraph::from_snapshot(&Snapshot::from_edges(&edges, &[]))
    }

    #[test]
    fn weight_is_conserved() {
        let g = ring(64);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let h = coarsen(g, 8, &mut rng);
        assert_eq!(h.coarsest().total_weight(), 64);
        assert!(h.coarsest().len() <= 64);
        assert!(!h.levels.is_empty());
    }

    #[test]
    fn coarse_graph_has_no_self_loops() {
        let g = ring(32);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let h = coarsen(g, 4, &mut rng);
        for level in &h.levels {
            for (v, ns) in level.graph.adj.iter().enumerate() {
                for &(u, _) in ns {
                    assert_ne!(u as usize, v, "self loop in coarse graph");
                }
            }
        }
    }

    #[test]
    fn coarse_adjacency_is_symmetric() {
        let g = ring(48);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let h = coarsen(g, 6, &mut rng);
        for level in &h.levels {
            let cg = &level.graph;
            for v in 0..cg.len() {
                for &(u, w) in &cg.adj[v] {
                    let back = cg.adj[u as usize]
                        .iter()
                        .find(|&&(x, _)| x as usize == v)
                        .map(|&(_, bw)| bw);
                    assert_eq!(back, Some(w), "asymmetric coarse edge");
                }
            }
        }
    }

    #[test]
    fn projection_round_trips_identity() {
        let g = ring(32);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let h = coarsen(g, 4, &mut rng);
        let coarse_assignment = vec![0u32; h.coarsest().len()];
        let fine = h.project_to_finest(coarse_assignment, |_, _| {});
        assert_eq!(fine.len(), 32);
        assert!(fine.iter().all(|&p| p == 0));
    }

    #[test]
    fn map_lengths_chain_correctly() {
        let g = ring(64);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let h = coarsen(g, 8, &mut rng);
        let mut prev_len = h.finest.len();
        for level in &h.levels {
            assert_eq!(level.map.len(), prev_len);
            prev_len = level.graph.len();
        }
    }
}
