//! Weighted working graph used inside the multilevel partitioner.
//!
//! Coarse levels carry node weights (number of original nodes collapsed
//! into each super-node) and edge weights (number of original edges
//! crossing between two super-nodes), which is what keeps the balance
//! constraint (Eq. 2) meaningful across levels.

use glodyne_graph::Snapshot;

/// Adjacency-list weighted graph.
#[derive(Debug, Clone)]
pub struct WGraph {
    /// Node weights (collapsed original-node counts).
    pub vwgt: Vec<u64>,
    /// Per-node adjacency: (neighbor, edge weight). Sorted by neighbor.
    pub adj: Vec<Vec<(u32, u64)>>,
}

impl WGraph {
    /// Lift an unweighted snapshot into a weighted working graph with
    /// unit node and edge weights.
    pub fn from_snapshot(g: &Snapshot) -> Self {
        let n = g.num_nodes();
        let mut adj = Vec::with_capacity(n);
        for v in 0..n {
            adj.push(g.neighbors(v).iter().map(|&u| (u, 1u64)).collect());
        }
        WGraph {
            vwgt: vec![1; n],
            adj,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.vwgt.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.vwgt.is_empty()
    }

    /// Total node weight.
    pub fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Weighted degree (sum of incident edge weights).
    pub fn wdegree(&self, v: usize) -> u64 {
        self.adj[v].iter().map(|&(_, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};

    #[test]
    fn lifts_snapshot_with_unit_weights() {
        let g = Snapshot::from_edges(
            &[
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2)),
            ],
            &[],
        );
        let w = WGraph::from_snapshot(&g);
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_weight(), 3);
        assert_eq!(w.wdegree(g.local_of(NodeId(1)).unwrap()), 2);
    }
}
