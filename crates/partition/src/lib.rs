//! METIS-like multilevel k-way balanced graph partitioning.
//!
//! GloDyNE's Step 1 (§4.1.1) partitions each snapshot into
//! `K = α·|V^t|` non-overlapping sub-networks minimizing edge cut
//! (Eq. 1) subject to the balance constraint
//! `|V_k| ≤ (1 + ε)·|V|/K` (Eq. 2). The paper uses METIS
//! ([Karypis & Kumar 1998]); this crate re-implements the same
//! three-phase multilevel scheme from scratch:
//!
//! 1. **Coarsening** ([`coarsen`]) — heavy-edge matching collapses node
//!    pairs until the abstract graph is small.
//! 2. **Initial partitioning** ([`initial`]) — greedy graph growing
//!    produces a K-way partition of the coarsest graph.
//! 3. **Uncoarsening + refinement** ([`refine`]) — projects the partition
//!    back level by level, each time improving the cut with
//!    boundary Kernighan–Lin/Fiduccia–Mattheyses style gain moves that
//!    respect the balance bound.
//!
//! Complexity is O(|V| + |E| + K log K) per the paper's §4.3 citation.

pub mod coarsen;
pub mod initial;
pub mod refine;
pub mod wgraph;

use glodyne_graph::Snapshot;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wgraph::WGraph;

/// Configuration for the multilevel partitioner.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Number of parts `K` (clamped to `[1, |V|]`).
    pub k: usize,
    /// Balance tolerance ε of Eq. 2; each part holds at most
    /// `(1 + ε)·W/K` total node weight. METIS's default imbalance is ~3%;
    /// we default to 10% which is plenty for node selection.
    pub epsilon: f64,
    /// RNG seed (matching order, tie-breaking, seeds for region growing).
    pub seed: u64,
    /// Stop coarsening when the graph has at most
    /// `max(coarsen_threshold, 8·K)` nodes.
    pub coarsen_threshold: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            k: 2,
            epsilon: 0.1,
            seed: 42,
            coarsen_threshold: 64,
            refine_passes: 4,
        }
    }
}

impl PartitionConfig {
    /// Convenience constructor with default tolerances.
    pub fn with_k(k: usize) -> Self {
        PartitionConfig {
            k,
            ..Default::default()
        }
    }
}

/// A K-way partition of a snapshot's nodes.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Part id (`0..k`) per local node index.
    pub assignment: Vec<u32>,
    /// Number of parts actually used.
    pub k: usize,
}

impl Partition {
    /// Group local node indices by part: `parts()[p]` lists the members
    /// of part `p`. Each node appears exactly once (Definition 5).
    pub fn parts(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.k];
        for (node, &p) in self.assignment.iter().enumerate() {
            out[p as usize].push(node as u32);
        }
        out
    }

    /// Number of cut edges of this partition on `g`.
    pub fn edge_cut(&self, g: &Snapshot) -> usize {
        let mut cut = 0;
        for a in 0..g.num_nodes() {
            for &b in g.neighbors(a) {
                if (b as usize) > a && self.assignment[a] != self.assignment[b as usize] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Relabel the parts to agree as much as possible with a previous
    /// labelling — the incremental API a sharded deployment needs: a
    /// fresh `partition()` numbers its parts arbitrarily, so applying
    /// it naively would migrate almost every node even when the cut
    /// barely moved. This maps each part onto one of `labels`
    /// (≥ `self.k`) distinct labels, greedily maximising the number of
    /// nodes whose label is unchanged (`prev(node)`); parts with no
    /// overlap get the lowest unused labels. Deterministic: ties break
    /// toward the smaller part id, then the smaller label.
    ///
    /// `prev` maps a local node index to its previous label (`None`
    /// for nodes that had none). After the call `self.k == labels`.
    ///
    /// # Panics
    /// If `labels < self.k` (fewer labels than parts cannot be a
    /// relabelling).
    pub fn relabel_to_match(&mut self, labels: usize, prev: impl Fn(usize) -> Option<u32>) {
        assert!(
            labels >= self.k,
            "relabel_to_match needs labels ({labels}) >= parts ({})",
            self.k
        );
        // Overlap matrix: how many nodes of part `p` previously carried
        // label `l`.
        let mut overlap = vec![0usize; self.k * labels];
        for (node, &p) in self.assignment.iter().enumerate() {
            if let Some(l) = prev(node) {
                if (l as usize) < labels {
                    overlap[p as usize * labels + l as usize] += 1;
                }
            }
        }
        let mut pairs: Vec<(usize, usize, usize)> = (0..self.k)
            .flat_map(|p| (0..labels).map(move |l| (p, l)))
            .filter_map(|(p, l)| {
                let c = overlap[p * labels + l];
                (c > 0).then_some((c, p, l))
            })
            .collect();
        // Largest overlap first; deterministic tie-breaks.
        pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut label_of = vec![u32::MAX; self.k];
        let mut label_taken = vec![false; labels];
        for (_, p, l) in pairs {
            if label_of[p] == u32::MAX && !label_taken[l] {
                label_of[p] = l as u32;
                label_taken[l] = true;
            }
        }
        let mut next_free = 0usize;
        for l in label_of.iter_mut() {
            if *l == u32::MAX {
                while label_taken[next_free] {
                    next_free += 1;
                }
                *l = next_free as u32;
                label_taken[next_free] = true;
            }
        }
        for p in self.assignment.iter_mut() {
            *p = label_of[*p as usize];
        }
        self.k = labels;
    }

    /// Largest part size divided by the perfectly balanced size
    /// (`|V|/K`); 1.0 means perfect balance.
    pub fn imbalance(&self, n: usize) -> f64 {
        if n == 0 || self.k == 0 {
            return 1.0;
        }
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        let max = *sizes.iter().max().unwrap() as f64;
        max / (n as f64 / self.k as f64)
    }
}

/// Partition a snapshot into `cfg.k` balanced parts minimizing edge cut.
///
/// Degenerate cases are handled up front: `k <= 1` puts everything in one
/// part; `k >= |V|` gives every node its own part.
pub fn partition(g: &Snapshot, cfg: &PartitionConfig) -> Partition {
    let n = g.num_nodes();
    if n == 0 {
        return Partition {
            assignment: Vec::new(),
            k: 0,
        };
    }
    let k = cfg.k.clamp(1, n);
    if k == 1 {
        return Partition {
            assignment: vec![0; n],
            k: 1,
        };
    }
    if k == n {
        return Partition {
            assignment: (0..n as u32).collect(),
            k,
        };
    }

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let base = WGraph::from_snapshot(g);
    let stop_at = cfg.coarsen_threshold.max(8 * k);

    // Phase 1: coarsen.
    let hierarchy = coarsen::coarsen(base, stop_at, &mut rng);

    // Phase 2: initial partition on the coarsest graph.
    let coarsest = hierarchy.coarsest();
    let mut assignment = initial::greedy_growing(coarsest, k, cfg.epsilon, &mut rng);
    refine::refine(coarsest, &mut assignment, k, cfg.epsilon, cfg.refine_passes);

    // Phase 3: uncoarsen with refinement at each level.
    let assignment = hierarchy.project_to_finest(assignment, |graph, asg| {
        refine::refine(graph, asg, k, cfg.epsilon, cfg.refine_passes);
    });

    Partition { assignment, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};

    fn grid(w: u32, h: u32) -> Snapshot {
        let mut edges = Vec::new();
        let at = |x: u32, y: u32| NodeId(y * w + x);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push(Edge::new(at(x, y), at(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push(Edge::new(at(x, y), at(x, y + 1)));
                }
            }
        }
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn covers_all_nodes_once() {
        let g = grid(8, 8);
        let p = partition(&g, &PartitionConfig::with_k(4));
        assert_eq!(p.assignment.len(), 64);
        let parts = p.parts();
        let total: usize = parts.iter().map(|v| v.len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn respects_balance_bound() {
        let g = grid(10, 10);
        let cfg = PartitionConfig {
            k: 5,
            epsilon: 0.15,
            ..Default::default()
        };
        let p = partition(&g, &cfg);
        let bound = ((1.0 + cfg.epsilon) * 100.0 / 5.0).ceil() as usize;
        for part in p.parts() {
            assert!(
                part.len() <= bound,
                "part size {} exceeds bound {bound}",
                part.len()
            );
        }
    }

    #[test]
    fn two_cliques_split_cleanly() {
        // Two 10-cliques joined by one bridge: optimal 2-way cut is 1.
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(10)));
        let g = Snapshot::from_edges(&edges, &[]);
        let p = partition(&g, &PartitionConfig::with_k(2));
        assert_eq!(
            p.edge_cut(&g),
            1,
            "multilevel scheme should find the bridge"
        );
    }

    #[test]
    fn k_one_and_k_ge_n() {
        let g = grid(3, 3);
        let p1 = partition(&g, &PartitionConfig::with_k(1));
        assert!(p1.assignment.iter().all(|&p| p == 0));
        let pn = partition(&g, &PartitionConfig::with_k(100));
        assert_eq!(pn.k, 9);
        let mut seen: Vec<u32> = pn.assignment.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 9, "every node its own part");
    }

    #[test]
    fn empty_graph() {
        let p = partition(&Snapshot::empty(), &PartitionConfig::with_k(4));
        assert_eq!(p.k, 0);
        assert!(p.assignment.is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = grid(12, 12);
        let cfg = PartitionConfig::with_k(6);
        let p1 = partition(&g, &cfg);
        let p2 = partition(&g, &cfg);
        assert_eq!(p1.assignment, p2.assignment);
    }

    #[test]
    fn relabel_recovers_a_permuted_labelling() {
        // Previous labels are a permutation of the fresh part ids; the
        // relabelling must recover it exactly (zero migrations).
        let g = grid(8, 8);
        let p = partition(&g, &PartitionConfig::with_k(4));
        let perm = [2u32, 0, 3, 1];
        let prev: Vec<u32> = p.assignment.iter().map(|&x| perm[x as usize]).collect();
        let mut relabelled = p.clone();
        relabelled.relabel_to_match(4, |node| Some(prev[node]));
        assert_eq!(relabelled.assignment, prev, "perfect overlap => no moves");
        assert_eq!(relabelled.k, 4);
    }

    #[test]
    fn relabel_spreads_into_a_larger_label_space() {
        // 2 parts relabelled into a 4-label space: part overlapping
        // label 3 keeps it, the other gets the lowest unused label, and
        // nodes with no previous label don't disturb the matching.
        let g = grid(6, 6);
        let mut p = partition(&g, &PartitionConfig::with_k(2));
        let witness = p.assignment.clone();
        p.relabel_to_match(4, |node| {
            if node % 3 == 0 {
                None
            } else {
                Some(if witness[node] == 1 { 3 } else { 0 })
            }
        });
        assert_eq!(p.k, 4);
        for (node, &w) in witness.iter().enumerate() {
            assert_eq!(
                p.assignment[node],
                if w == 1 { 3 } else { 0 },
                "node {node}"
            );
        }
    }

    #[test]
    fn relabel_with_no_history_keeps_distinct_labels() {
        let g = grid(5, 5);
        let mut p = partition(&g, &PartitionConfig::with_k(3));
        p.relabel_to_match(3, |_| None);
        let mut labels: Vec<u32> = p.assignment.clone();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels, vec![0, 1, 2], "fresh labels stay a bijection");
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn relabel_rejects_shrinking_label_space() {
        let g = grid(4, 4);
        let mut p = partition(&g, &PartitionConfig::with_k(4));
        p.relabel_to_match(2, |_| None);
    }

    #[test]
    fn cut_beats_random_assignment() {
        use rand::Rng;
        let g = grid(12, 12);
        let p = partition(&g, &PartitionConfig::with_k(4));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let random = Partition {
            assignment: (0..g.num_nodes()).map(|_| rng.gen_range(0..4)).collect(),
            k: 4,
        };
        assert!(
            p.edge_cut(&g) < random.edge_cut(&g),
            "multilevel cut {} should beat random cut {}",
            p.edge_cut(&g),
            random.edge_cut(&g)
        );
    }
}
