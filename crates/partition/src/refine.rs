//! Refinement: greedy boundary Kernighan–Lin / Fiduccia–Mattheyses moves.
//!
//! During uncoarsening METIS "recursively swaps the collapsed nodes at
//! the border of sub-networks between two neighboring sub-networks, so as
//! to minimize the edge cut" (§4.1.1). This implementation performs
//! passes of greedy single-node moves: a boundary node moves to the
//! neighbouring part with the highest positive gain (external minus
//! internal connection weight), provided the balance bound of Eq. 2
//! stays satisfied.

use crate::wgraph::WGraph;

/// Weighted edge cut of an assignment.
pub fn edge_cut(g: &WGraph, assignment: &[u32]) -> u64 {
    let mut cut = 0;
    for v in 0..g.len() {
        for &(u, w) in &g.adj[v] {
            if (u as usize) > v && assignment[v] != assignment[u as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Run up to `passes` refinement passes in place. Each pass visits every
/// node once; stops early when a pass makes no move.
pub fn refine(g: &WGraph, assignment: &mut [u32], k: usize, epsilon: f64, passes: usize) {
    if k <= 1 || g.is_empty() {
        return;
    }
    let total = g.total_weight();
    let cap = ((1.0 + epsilon) * total as f64 / k as f64).ceil().max(1.0) as u64;

    let mut loads = vec![0u64; k];
    for v in 0..g.len() {
        loads[assignment[v] as usize] += g.vwgt[v];
    }

    // connection weight from node v to each part, computed per node visit
    let mut conn = vec![0u64; k];
    for _ in 0..passes {
        let mut moved = false;
        for v in 0..g.len() {
            let home = assignment[v] as usize;
            if g.adj[v].is_empty() {
                continue;
            }
            for c in conn.iter_mut() {
                *c = 0;
            }
            let mut is_boundary = false;
            for &(u, w) in &g.adj[v] {
                let p = assignment[u as usize] as usize;
                conn[p] += w;
                if p != home {
                    is_boundary = true;
                }
            }
            if !is_boundary {
                continue;
            }
            let vw = g.vwgt[v];
            // Best destination by gain, respecting the balance cap and
            // never emptying the home part (Definition 5 requires K
            // non-empty sub-networks for node selection).
            let mut best: Option<(usize, i64)> = None;
            for p in 0..k {
                if p == home || loads[p] + vw > cap {
                    continue;
                }
                let gain = conn[p] as i64 - conn[home] as i64;
                match best {
                    Some((_, bg)) if bg >= gain => {}
                    _ => best = Some((p, gain)),
                }
            }
            if let Some((p, gain)) = best {
                if gain > 0 && loads[home] > vw {
                    assignment[v] = p as u32;
                    loads[home] -= vw;
                    loads[p] += vw;
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};
    use glodyne_graph::Snapshot;

    fn two_cliques_with_bridge() -> WGraph {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(6)));
        WGraph::from_snapshot(&Snapshot::from_edges(&edges, &[]))
    }

    #[test]
    fn refinement_never_worsens_cut() {
        let g = two_cliques_with_bridge();
        // Deliberately bad split: interleave parts.
        let mut a: Vec<u32> = (0..g.len() as u32).map(|i| i % 2).collect();
        let before = edge_cut(&g, &a);
        refine(&g, &mut a, 2, 0.3, 8);
        let after = edge_cut(&g, &a);
        assert!(after <= before, "cut went {before} -> {after}");
    }

    #[test]
    fn finds_the_bridge_cut() {
        let g = two_cliques_with_bridge();
        let mut a: Vec<u32> = (0..g.len() as u32).map(|i| i % 2).collect();
        refine(&g, &mut a, 2, 0.3, 20);
        assert_eq!(edge_cut(&g, &a), 1);
    }

    #[test]
    fn respects_balance_cap() {
        let g = two_cliques_with_bridge();
        let mut a: Vec<u32> = (0..g.len() as u32).map(|i| i % 2).collect();
        refine(&g, &mut a, 2, 0.1, 20);
        let ones = a.iter().filter(|&&p| p == 1).count();
        let cap = ((1.1_f64) * 12.0 / 2.0).ceil() as usize;
        assert!(
            ones <= cap && (12 - ones) <= cap,
            "parts {ones}/{}",
            12 - ones
        );
    }

    #[test]
    fn never_empties_a_part() {
        // Star graph: hub strongly prefers the leaf part, but moving the
        // last member of a part is forbidden.
        let edges: Vec<Edge> = (1..6).map(|i| Edge::new(NodeId(0), NodeId(i))).collect();
        let g = WGraph::from_snapshot(&Snapshot::from_edges(&edges, &[]));
        let mut a = vec![0u32; 6];
        a[0] = 1; // hub alone in part 1
        refine(&g, &mut a, 2, 5.0, 10);
        let part1 = a.iter().filter(|&&p| p == 1).count();
        assert!(part1 >= 1, "part 1 must stay non-empty");
    }

    #[test]
    fn noop_for_k_one() {
        let g = two_cliques_with_bridge();
        let mut a = vec![0u32; g.len()];
        refine(&g, &mut a, 1, 0.1, 5);
        assert!(a.iter().all(|&p| p == 0));
    }
}
