//! Hard-crash smoke test against the real `glodyne` binary: run
//! `glodyne serve --data-dir … --fsync every:1`, pump ~10k events over
//! the wire, `SIGKILL` the process mid-lineage, restart it on the same
//! directory, and check the recovered server answers with the same
//! committed epoch and byte-identical `nearest` responses.
//!
//! Ignored by default (it forks real processes and fsyncs ~10k times);
//! run it explicitly with
//! `cargo test -p glodyne-cli --test crash_recovery -- --ignored`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "glodyne-crash-smoke-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct ServerProc {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: String,
    preamble: String,
}

/// Spawn `glodyne serve` on the data dir and wait for its preamble to
/// announce the bound address.
fn spawn_server(dir: &std::path::Path) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_glodyne"))
        .args([
            "serve",
            "--bind",
            "127.0.0.1:0",
            "--policy",
            "manual",
            "--dim",
            "8",
            "--walks",
            "2",
            "--walk-length",
            "8",
            "--epochs",
            "1",
            "--data-dir",
            &dir.display().to_string(),
            "--fsync",
            "every:1",
            "--snapshot-every",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn glodyne serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut preamble = String::new();
    let addr = loop {
        let mut line = String::new();
        if stdout.read_line(&mut line).expect("read preamble") == 0 {
            panic!("server exited before announcing its address:\n{preamble}");
        }
        preamble.push_str(&line);
        if let Some(rest) = line.strip_prefix("serving on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };
    ServerProc {
        child,
        stdout,
        addr,
        preamble,
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn round_trip(&mut self, request: &str) -> String {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "server hung up on {request}");
        line.trim_end().to_string()
    }
}

/// Pull `"epoch":N` out of a stats line.
fn epoch_of(stats: &str) -> u64 {
    let tail = &stats[stats.find("\"epoch\":").expect("epoch field") + 8..];
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("epoch digits")
}

/// Byte-exact read surface: `nearest` for a handful of probes.
fn nearest_surface(client: &mut Client) -> Vec<String> {
    [0u32, 5, 17, 63]
        .iter()
        .map(|n| client.round_trip(&format!(r#"{{"cmd":"nearest","node":{n},"k":5}}"#)))
        .collect()
}

#[test]
#[ignore = "forks real server processes and fsyncs per event; run with -- --ignored"]
fn sigkill_mid_stream_recovers_committed_epoch_bit_exact() {
    let dir = data_dir();
    let mut server = spawn_server(&dir);
    assert!(
        server.preamble.contains("durable: fresh lineage"),
        "{}",
        server.preamble
    );
    let mut client = Client::connect(&server.addr);

    // ~10k events in committed batches: ingest + flush per batch so the
    // final committed epoch is well past the initial snapshot.
    let mut sent = 0u64;
    for batch in 0..4u32 {
        let edges: Vec<String> = (0..2500u32)
            .map(|i| {
                // Distinct (u, v) pairs over 512 nodes for every e in
                // 0..10000, so each batch grows the graph and each
                // flush commits a real epoch.
                let e = batch * 2500 + i;
                let u = e % 512;
                let v = (e / 512 + 1 + u) % 512;
                format!("[{u},{v},{batch}]")
            })
            .collect();
        let resp = client.round_trip(&format!(
            r#"{{"cmd":"ingest","edges":[{}]}}"#,
            edges.join(",")
        ));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        sent += 2500;
        let resp = client.round_trip(r#"{"cmd":"flush"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    assert_eq!(sent, 10_000);

    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    let committed_epoch = epoch_of(&stats);
    assert!(committed_epoch >= 4, "{stats}");
    let before = nearest_surface(&mut client);

    // Un-flushed tail the crash may tear — it must not disturb the
    // committed read surface either way.
    let resp = client.round_trip(r#"{"cmd":"ingest","edges":[[1,2,9],[3,4,9],[5,6,9]]}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");

    // Hard kill: SIGKILL, no shutdown handshake, no final snapshot.
    server.child.kill().expect("SIGKILL server");
    server.child.wait().expect("reap server");
    drop(client);

    // Restart on the same directory.
    let mut server = spawn_server(&dir);
    assert!(
        server.preamble.contains("durable: recovered from"),
        "{}",
        server.preamble
    );
    let mut client = Client::connect(&server.addr);
    let stats = client.round_trip(r#"{"cmd":"stats"}"#);
    assert_eq!(
        epoch_of(&stats),
        committed_epoch,
        "recovered committed epoch must match: {stats}"
    );
    assert!(stats.contains("\"recovered_from\":\""), "{stats}");
    assert_eq!(
        nearest_surface(&mut client),
        before,
        "nearest responses must be byte-identical after SIGKILL recovery"
    );

    // Clean stop this time; the binary should exit on its own.
    let bye = client.round_trip(r#"{"cmd":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    let mut remainder = String::new();
    let _ = server.stdout.read_to_string(&mut remainder);
    let status = server.child.wait().expect("reap server");
    assert!(
        status.success(),
        "clean shutdown exit: {status:?}\n{remainder}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
