//! The `glodyne` command-line tool: end-user workflows over timestamped
//! edge-stream files.
//!
//! ```text
//! glodyne embed     --input edges.txt --snapshots 10 --out-dir embeddings/
//! glodyne partition --input edges.txt --k 8
//! glodyne evaluate  --input edges.txt --snapshots 10
//! ```
//!
//! Input format: `u v [timestamp]` per line (`#`/`%` comments allowed) —
//! the format the paper's SNAP/KONECT datasets ship in. Snapshots are
//! cut at equal-count timestamp quantiles and reduced to their largest
//! connected component, following §5.1.1.

pub mod commands;
pub mod opts;

use std::fmt;

/// A CLI-level error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// Parse arguments and dispatch to a subcommand; returns the process
/// exit code.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "embed" => commands::embed(&opts::Opts::parse(rest)),
        "partition" => commands::partition_cmd(&opts::Opts::parse(rest)),
        "evaluate" => commands::evaluate(&opts::Opts::parse(rest)),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// The help text.
pub fn usage() -> String {
    "glodyne — Global Topology Preserving Dynamic Network Embedding

USAGE:
  glodyne embed     --input <edges.txt> [--snapshots 10] [--out-dir .]
                    [--alpha 0.1] [--dim 128] [--walks 10] [--walk-length 80]
                    [--window 10] [--negatives 5] [--epochs 2] [--seed 0]
  glodyne partition --input <edges.txt> [--k 8] [--epsilon 0.1] [--seed 0]
  glodyne evaluate  --input <edges.txt> [--snapshots 10] [--alpha 0.1]
                    [--dim 128] [--seed 0]

Input: one `u v [timestamp]` edge per line; # and % comments ignored.
`embed` writes one TSV embedding file per snapshot into --out-dir.
`partition` prints `node part` lines for the final snapshot.
`evaluate` reports graph-reconstruction MeanP@k and link-prediction AUC.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn help_flag_works() {
        assert!(run(&s(&["--help"])).unwrap().contains("glodyne"));
    }

    #[test]
    fn embed_requires_input() {
        let err = run(&s(&["embed"])).unwrap_err();
        assert!(err.to_string().contains("--input"));
    }
}
