//! The `glodyne` command-line tool: end-user workflows over timestamped
//! edge-stream files.
//!
//! ```text
//! glodyne embed     --input edges.txt --snapshots 10 --out-dir embeddings/
//! glodyne stream    --input edges.txt --policy timestamp --query 42
//! glodyne partition --input edges.txt --k 8
//! glodyne evaluate  --input edges.txt --snapshots 10
//! ```
//!
//! Input format: `u v [timestamp]` per line (`#`/`%` comments allowed) —
//! the format the paper's SNAP/KONECT datasets ship in. Snapshots are
//! cut at equal-count timestamp quantiles and reduced to their largest
//! connected component, following §5.1.1; `stream` instead feeds the
//! edges one event at a time through an `EmbedderSession`.

pub mod commands;
pub mod opts;

use glodyne::ConfigError;
use std::error::Error;
use std::fmt;
use std::io;

/// A structured CLI-level error with a user-facing message and a
/// `source()` chain down to the underlying failure.
#[derive(Debug)]
pub enum CliError {
    /// An I/O failure, with the path or operation that failed.
    Io {
        /// What was being done (e.g. `"cannot open edges.txt"`).
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Input that could not be parsed (bad edge line, empty stream…).
    Parse(String),
    /// An invalid embedder configuration, chained from [`ConfigError`].
    Config(ConfigError),
    /// Wrong command-line usage (unknown command, missing option…).
    Usage(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
            CliError::Parse(msg) => write!(f, "parse error: {msg}"),
            CliError::Config(e) => write!(f, "configuration error: {e}"),
            CliError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Config(e) => Some(e),
            CliError::Parse(_) | CliError::Usage(_) => None,
        }
    }
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io {
            context: "io error".to_string(),
            source: e,
        }
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}

/// Parse arguments and dispatch to a subcommand; returns the report to
/// print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "embed" => commands::embed(&opts::Opts::parse(rest)),
        "stream" => commands::stream(&opts::Opts::parse(rest)),
        "serve" => commands::serve(&opts::Opts::parse(rest)),
        "stats" => commands::stats_cmd(&opts::Opts::parse(rest)),
        "recover" => commands::recover(&opts::Opts::parse(rest)),
        "partition" => commands::partition_cmd(&opts::Opts::parse(rest)),
        "evaluate" => commands::evaluate(&opts::Opts::parse(rest)),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

/// The help text.
pub fn usage() -> String {
    "glodyne — Global Topology Preserving Dynamic Network Embedding

USAGE:
  glodyne embed     --input <edges.txt> [--snapshots 10] [--out-dir .]
                    [--alpha 0.1] [--dim 128] [--walks 10] [--walk-length 80]
                    [--window 10] [--negatives 5] [--epochs 2] [--seed 0]
  glodyne stream    --input <edges.txt> [--policy timestamp|every-n|manual]
                    [--every 1000] [--query <node>] [--top-k 10]
                    [--ann] [--cells 64] [--nprobe 8]
                    [--shards N] [--shard-epsilon 0.1] [--shard-seed 0]
                    [--drift 0.25] [--ann-overfetch 2]
                    [--alpha 0.1] [--dim 128] [--seed 0]
                    [--addr HOST:PORT] [--retry-budget 5]
  glodyne serve     [--bind 127.0.0.1:7878] [--threads 64] [--queue 1024]
                    [--policy timestamp|every-n|manual] [--every 1000]
                    [--ann] [--cells 64] [--nprobe 8]
                    [--shards N] [--shard-epsilon 0.1] [--shard-seed 0]
                    [--drift 0.25] [--ann-overfetch 2]
                    [--input <edges.txt>] [--alpha 0.1] [--dim 128] [--seed 0]
                    [--data-dir <dir>] [--fsync flush|off|every:<n>]
                    [--snapshot-every 4] [--keep-snapshots 2]
                    [--segment-bytes 4194304]
                    [--telemetry] [--probe-every 1000] [--probe-k 10]
                    [--probe-sample 16] [--probe-seed 42] [--slow-us 10000]
                    [--fast-fail] [--deadline-ms <ms>] [--stall-after-ms 5000]
                    [--write-timeout-ms 30000]
  glodyne stats     [--addr 127.0.0.1:7878] [--watch] [--interval-ms 2000]
                    [--retry-budget 5]
  glodyne recover   --data-dir <dir>
  glodyne partition --input <edges.txt> [--k 8] [--epsilon 0.1] [--seed 0]
  glodyne evaluate  --input <edges.txt> [--snapshots 10] [--alpha 0.1]
                    [--dim 128] [--seed 0]

Input: one `u v [timestamp]` edge per line; # and % comments ignored.
`embed` writes one TSV embedding file per snapshot into --out-dir.
`stream` feeds the edges event-by-event through an embedder session,
  printing one step report per committed snapshot boundary; with
  --query it prints the node's nearest neighbours at the end. With
  --addr it instead streams the edge file to a running server over the
  wire (batched ingest, then flush, then --query via wire `nearest`),
  retrying connect failures and `overloaded` sheds with jittered
  exponential backoff under a --retry-budget attempt budget.
`serve` runs a TCP serving process speaking line-delimited JSON
  (query/nearest/ingest/flush/stats/shutdown); reads are answered from
  an immutable epoch snapshot and never wait on training. --threads
  bounds concurrent connections, --queue bounds the ingest backlog,
  --input optionally warm-starts the session from an edge file.
With --ann, `stream` and `serve` additionally build an IVF index over
  each committed epoch (--cells coarse cells, --nprobe probe default);
  `serve` then accepts nearest requests with \"mode\":\"ann\".
With --shards N, `stream` and `serve` partition the event stream into N
  shards (min-cut partitioning, --shard-epsilon balance, re-partitioned
  when more than a --drift fraction of nodes is hash-placed); each shard
  trains its own session (its own trainer thread under `serve`),
  cross-shard edges are mirrored to both sides as halo edges, `nearest`
  fans out across shards and merges owned hits (each shard over-fetched
  by --ann-overfetch before halo filtering: higher = better fan-out
  recall, more per-shard scan work), and `stats` reports a per-shard
  \"shards\" array.
With --data-dir, `serve` becomes crash-recoverable: every ingested
  event is appended to a segmented write-ahead log under the directory
  and committed epochs are periodically frozen into snapshot files.
  Restarting with the same --data-dir resumes the embedding bit-exactly
  (a clean `shutdown` replays zero events; after a crash the WAL suffix
  is replayed). --fsync trades durability for throughput (`flush` syncs
  at epoch boundaries, `every:<n>` after every n events, `off` leaves
  it to the OS); SGNS training is forced single-threaded so replay is
  deterministic. Warm-start --input is skipped when an existing lineage
  is recovered.
With --telemetry (implied by any probe or --slow-us flag), `serve`
  keeps lock-free latency histograms for every pipeline stage, answers
  the `metrics` op with Prometheus-style text (scrapable with nc), adds
  a \"telemetry\" object to `stats`, and keeps a ring of the last 32
  requests slower than --slow-us microseconds. With --ann it also runs
  a background quality probe every --probe-every ms: recall@--probe-k
  of the IVF index against an exact scan over --probe-sample sampled
  nodes, published as a live gauge. The probe reads the same immutable
  epoch snapshots as queries and never blocks serving.
Overload control: --fast-fail makes `serve` shed ingest with a
  structured `overloaded` error instead of blocking when the queue is
  full; --deadline-ms bounds every ingest/flush by a default deadline
  (requests may carry their own `deadline_ms`); --stall-after-ms is how
  long the trainer may go silent with work pending before `stats`
  reports health.degraded and writes get `degraded` errors (reads keep
  serving the last published epoch); --write-timeout-ms disconnects
  slow consumers instead of letting them wedge a server thread.
`stats` connects to a running server and pretty-prints its `stats`
  object once, or every --interval-ms with --watch (exits when the
  server goes away); connect failures and `overloaded` responses retry
  with jittered backoff under --retry-budget attempts.
`recover` inspects a --data-dir without serving: snapshot integrity,
  WAL segment health, and how much a restart would replay.
`partition` prints `node part` lines for the final snapshot.
`evaluate` reports graph-reconstruction MeanP@k and link-prediction AUC.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn help_flag_works() {
        assert!(run(&s(&["--help"])).unwrap().contains("glodyne"));
    }

    #[test]
    fn embed_requires_input() {
        let err = run(&s(&["embed"])).unwrap_err();
        assert!(err.to_string().contains("--input"));
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let io_err = CliError::Io {
            context: "cannot open x".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(io_err.source().is_some());
        assert!(io_err.to_string().contains("cannot open x"));

        let cfg_err = CliError::from(ConfigError::new("alpha", "must be in (0, 1]"));
        let src = cfg_err.source().expect("config source");
        assert!(src.to_string().contains("alpha"));

        assert!(CliError::Parse("bad line".into()).source().is_none());
    }
}
