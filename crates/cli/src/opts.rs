//! Minimal `--key value` option parsing for the CLI (kept free of
//! external dependencies).

use std::collections::HashMap;

/// Parsed options.
#[derive(Debug, Default, Clone)]
pub struct Opts {
    values: HashMap<String, String>,
}

impl Opts {
    /// Parse a token list of `--key value` pairs (bare `--flag` maps to
    /// "true").
    pub fn parse(tokens: &[String]) -> Self {
        let mut values = HashMap::new();
        let mut key: Option<String> = None;
        for tok in tokens {
            if let Some(stripped) = tok.strip_prefix("--") {
                if let Some(k) = key.take() {
                    values.insert(k, "true".into());
                }
                key = Some(stripped.to_string());
            } else if let Some(k) = key.take() {
                values.insert(k, tok.clone());
            }
        }
        if let Some(k) = key {
            values.insert(k, "true".into());
        }
        Opts { values }
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, crate::CliError> {
        self.values
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| crate::CliError::Usage(format!("missing required option --{key}")))
    }

    /// Optional parsed value with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Optional parsed value: `None` when absent, an error when present
    /// but unparseable (a typo must not silently drop the option).
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, crate::CliError> {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| crate::CliError::Usage(format!("invalid value `{v}` for --{key}"))),
        }
    }

    /// Optional string with default.
    pub fn get_str<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map(|s| s.as_str()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn require_present_and_missing() {
        let o = parse("--input foo.txt");
        assert_eq!(o.require("input").unwrap(), "foo.txt");
        assert!(o.require("output").is_err());
    }

    #[test]
    fn typed_defaults() {
        let o = parse("--alpha 0.25 --dim 32");
        assert_eq!(o.get("alpha", 0.1), 0.25);
        assert_eq!(o.get("dim", 128usize), 32);
        assert_eq!(o.get("walks", 10usize), 10);
    }

    #[test]
    fn string_default() {
        let o = parse("");
        assert_eq!(o.get_str("out-dir", "."), ".");
    }

    #[test]
    fn get_opt_absent_present_and_typo() {
        let o = parse("--query 42");
        assert_eq!(o.get_opt::<u32>("query").unwrap(), Some(42));
        assert_eq!(o.get_opt::<u32>("missing").unwrap(), None);
        let err = parse("--query 0x1f").get_opt::<u32>("query").unwrap_err();
        assert!(err.to_string().contains("--query"), "{err}");
    }
}
