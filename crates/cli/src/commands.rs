//! Subcommand implementations.

use crate::opts::Opts;
use crate::CliError;
use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig, IvfConfig, StepReport};
use glodyne_durable::{
    list_segments, list_snapshots, load_snapshot, replay, DurableConfig, DurableSession,
    FsyncPolicy, WalRecord, PAYLOAD_ROUTER, PAYLOAD_SESSION,
};
use glodyne_embed::persist;
use glodyne_embed::traits::{run_over_reports, step_with, DynamicEmbedder};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_graph::id::TimedEdge;
use glodyne_graph::io::read_edge_stream;
use glodyne_graph::{DynamicNetwork, NodeId};
use glodyne_partition::{partition, PartitionConfig};
use glodyne_serve::json::Json;
use glodyne_serve::{json, AnnSettings, ProbeSettings, ServeError, Server, ServerConfig};
use glodyne_shard::{ShardConfig, ShardedState};
use glodyne_tasks::gr::mean_precision_at_k;
use glodyne_tasks::lp::{build_test_set, link_prediction_auc};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// Load an edge stream file.
fn load_stream(path: &str) -> Result<Vec<TimedEdge>, CliError> {
    let file = File::open(path).map_err(|e| CliError::Io {
        context: format!("cannot open {path}"),
        source: e,
    })?;
    let stream = read_edge_stream(BufReader::new(file)).map_err(|e| {
        if e.kind() == std::io::ErrorKind::InvalidData {
            CliError::Parse(format!("{path}: {e}"))
        } else {
            CliError::Io {
                context: format!("cannot read {path}"),
                source: e,
            }
        }
    })?;
    if stream.is_empty() {
        return Err(CliError::Parse(format!("{path}: no edges parsed")));
    }
    Ok(stream)
}

/// Cut a stream into at most `n` snapshots at equal-count timestamp
/// quantiles (§5.1.1 uses calendar days; without calendar semantics,
/// quantiles give evenly-filled snapshots).
///
/// Duplicate timestamps can make neighbouring quantiles coincide; those
/// cutoffs are deduplicated (and `n` is effectively clamped to the
/// number of distinct timestamps), so no two snapshots are identical
/// re-cuts of the same prefix.
pub fn cut_snapshots(stream: Vec<TimedEdge>, n: usize) -> DynamicNetwork {
    if stream.is_empty() || n == 0 {
        return DynamicNetwork::default();
    }
    let mut times: Vec<u64> = stream.iter().map(|e| e.time).collect();
    times.sort_unstable();
    let mut cutoffs: Vec<u64> = (1..=n)
        .map(|i| {
            let idx = (i * times.len()) / n;
            times[idx.saturating_sub(1).min(times.len() - 1)]
        })
        .collect();
    // Sorted quantiles are non-decreasing; drop repeats caused by
    // duplicate timestamps.
    cutoffs.dedup();
    DynamicNetwork::from_edge_stream(stream, &cutoffs)
}

fn glodyne_config(opts: &Opts) -> Result<GloDyNEConfig, CliError> {
    let cfg = GloDyNEConfig::builder()
        .alpha(opts.get("alpha", 0.1))
        .epsilon(opts.get("epsilon", 0.1))
        .walk(WalkConfig {
            walks_per_node: opts.get("walks", 10),
            walk_length: opts.get("walk-length", 80),
            seed: opts.get("seed", 0u64),
        })
        .sgns(SgnsConfig {
            dim: opts.get("dim", 128),
            window: opts.get("window", 10),
            negatives: opts.get("negatives", 5),
            epochs: opts.get("epochs", 2),
            seed: opts.get("seed", 0u64),
            ..Default::default()
        })
        .strategy(glodyne::Strategy::S4)
        .seed(opts.get("seed", 0u64))
        .build()?;
    Ok(cfg)
}

/// One human-readable progress line per embedding step, fed by the
/// method's [`StepReport`].
fn report_line(t: usize, nodes: usize, edges: usize, r: &StepReport) -> String {
    format!(
        "t={t}: |V|={nodes} |E|={edges} selected={} pairs={} tokens={} \
         select={:.0}ms walks={:.0}ms train={:.0}ms",
        r.selected,
        r.trained_pairs,
        r.corpus_tokens,
        r.phases.select.as_secs_f64() * 1e3,
        r.phases.walks.as_secs_f64() * 1e3,
        r.phases.train.as_secs_f64() * 1e3,
    )
}

/// `glodyne embed`: run GloDyNE over the stream, write one TSV per step.
pub fn embed(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("input")?;
    let n_snapshots = opts.get("snapshots", 10usize);
    let out_dir = opts.get_str("out-dir", ".");
    let stream = load_stream(input)?;
    let net = cut_snapshots(stream, n_snapshots);

    std::fs::create_dir_all(out_dir)?;
    let mut model = GloDyNE::new(glodyne_config(opts)?)?;
    let mut report = String::new();
    // One step at a time: each embedding is written and dropped before
    // the next step so memory stays at one |V|×d matrix.
    let mut prev = None;
    for (t, snap) in net.snapshots().iter().enumerate() {
        let step = step_with(&mut model, prev, snap);
        let emb = model.embedding();
        let path = Path::new(out_dir).join(format!("embedding_t{t:03}.tsv"));
        let mut w = BufWriter::new(File::create(&path)?);
        persist::write_tsv(&mut w, &emb)?;
        report.push_str(&report_line(t, snap.num_nodes(), snap.num_edges(), &step));
        report.push_str(&format!(" -> {}\n", path.display()));
        prev = Some(snap);
    }
    Ok(report)
}

/// Shared `--ann`/`--cells`/`--nprobe`/`--sq8`/`--rerank` parsing for
/// `stream` and `serve`: `None` unless `--ann` is given; the IVF seed
/// rides the shared `--seed`. `--sq8` stores posting lists quantized
/// to one byte per component and re-ranks the top `--rerank`×`k`
/// candidates with the exact kernel.
fn parse_ann(opts: &Opts) -> Result<Option<AnnSettings>, CliError> {
    if !opts.get("ann", false) {
        return Ok(None);
    }
    let settings = AnnSettings {
        config: IvfConfig {
            cells: opts.get("cells", 64usize),
            seed: opts.get("seed", 0u64),
            quantize: opts.get("sq8", false),
            rerank_factor: opts.get("rerank", 4usize),
            ..Default::default()
        },
        default_nprobe: opts.get("nprobe", 8usize),
    };
    settings.validate().map_err(CliError::Config)?;
    Ok(Some(settings))
}

/// Parse `--query` as one node id or a comma-separated list
/// (`--query 0,5,9`): `None` when absent, a usage error on any
/// malformed id.
fn parse_query_nodes(opts: &Opts) -> Result<Option<Vec<NodeId>>, CliError> {
    let Some(raw) = opts.get_opt::<String>("query")? else {
        return Ok(None);
    };
    raw.split(',')
        .map(|tok| {
            tok.trim().parse::<u32>().map(NodeId).map_err(|_| {
                CliError::Usage(format!(
                    "invalid node id `{tok}` in --query \
                     (expected a u32 or a comma-separated list of them)"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

/// Shared `--shards`/`--shard-epsilon`/`--shard-seed`/`--drift`/
/// `--ann-overfetch` parsing for `stream` and `serve`: `None` without
/// `--shards` (or with `--shards 1`, the unsharded fast path). The
/// partitioner seed defaults to the shared `--seed`; `--ann-overfetch`
/// trades per-shard scan work for fan-out recall on halo-heavy graphs.
fn parse_shards(opts: &Opts) -> Result<Option<ShardConfig>, CliError> {
    let shards = opts.get_opt::<usize>("shards")?;
    let Some(shards) = shards.filter(|&s| s != 1) else {
        return Ok(None);
    };
    let defaults = ShardConfig::default();
    let cfg = ShardConfig {
        shards,
        epsilon: opts.get("shard-epsilon", 0.1),
        seed: opts.get("shard-seed", opts.get("seed", 0u64)),
        drift_threshold: opts.get("drift", 0.25),
        ann_overfetch: opts.get("ann-overfetch", defaults.ann_overfetch),
        ..defaults
    };
    cfg.validate().map_err(CliError::Config)?;
    Ok(Some(cfg))
}

/// One embedder session per shard. Each shard's walk/SGNS seeds are
/// offset by its shard id so shards don't train on identical random
/// streams.
fn shard_sessions(
    opts: &Opts,
    policy: EpochPolicy,
    shards: usize,
    ann: Option<&AnnSettings>,
) -> Result<Vec<EmbedderSession<GloDyNE>>, CliError> {
    (0..shards)
        .map(|shard| {
            let mut cfg = glodyne_config(opts)?;
            cfg.walk.seed = cfg.walk.seed.wrapping_add(shard as u64);
            cfg.sgns.seed = cfg.sgns.seed.wrapping_add(shard as u64);
            let mut session = EmbedderSession::new(GloDyNE::new(cfg)?, policy)?;
            if let Some(settings) = ann {
                session = session.with_ann(settings.config)?;
            }
            Ok(session)
        })
        .collect()
}

/// Shared durability parsing for `serve`: `None` without `--data-dir`;
/// with it, `--fsync` (`flush`, `off`, `every:<n>`), `--snapshot-every`,
/// `--keep-snapshots`, and `--segment-bytes` tune the lineage.
fn parse_durable(opts: &Opts) -> Result<Option<(PathBuf, DurableConfig)>, CliError> {
    let Some(dir) = opts.get_opt::<String>("data-dir")? else {
        return Ok(None);
    };
    let defaults = DurableConfig::default();
    let fsync = match opts.get_opt::<String>("fsync")? {
        None => defaults.fsync,
        Some(spec) => FsyncPolicy::parse(&spec)
            .map_err(|e| CliError::Usage(format!("invalid --fsync `{spec}`: {e}")))?,
    };
    let cfg = DurableConfig {
        segment_bytes: opts.get("segment-bytes", defaults.segment_bytes).max(1),
        fsync,
        snapshot_every: opts.get("snapshot-every", defaults.snapshot_every),
        keep_snapshots: opts.get("keep-snapshots", defaults.keep_snapshots).max(1),
    };
    Ok(Some((PathBuf::from(dir), cfg)))
}

/// Shared telemetry parsing for `serve`: `--telemetry` switches the
/// metrics registry on (any probe or slow-query flag implies it), the
/// probe cadence rides `--probe-every <ms>` / `--probe-k` /
/// `--probe-sample` / `--probe-seed`, and `--slow-us` sets the
/// slow-query ring threshold. Returns `(telemetry, probe, slow_us)`
/// ready to drop into a [`ServerConfig`].
fn parse_telemetry(opts: &Opts) -> Result<(bool, Option<ProbeSettings>, Option<u64>), CliError> {
    let probe_flags = opts.get_opt::<u64>("probe-every")?.is_some()
        || opts.get_opt::<usize>("probe-k")?.is_some()
        || opts.get_opt::<usize>("probe-sample")?.is_some();
    let slow_us = opts.get_opt::<u64>("slow-us")?;
    let telemetry = opts.get("telemetry", false) || probe_flags || slow_us.is_some();
    if !telemetry {
        return Ok((false, None, None));
    }
    let defaults = ProbeSettings::default();
    let probe = ProbeSettings {
        period_ms: opts.get("probe-every", defaults.period_ms),
        k: opts.get("probe-k", defaults.k),
        sample: opts.get("probe-sample", defaults.sample),
        seed: opts.get("probe-seed", defaults.seed),
    };
    probe.validate().map_err(CliError::Config)?;
    Ok((true, Some(probe), slow_us))
}

/// Shared `--policy` parsing for `stream` and `serve`.
fn parse_policy(opts: &Opts) -> Result<EpochPolicy, CliError> {
    match opts.get_str("policy", "timestamp") {
        "timestamp" => Ok(EpochPolicy::TimestampBoundary),
        "every-n" => Ok(EpochPolicy::EveryNEvents(opts.get("every", 1000usize))),
        "manual" => Ok(EpochPolicy::Manual),
        other => Err(CliError::Usage(format!(
            "unknown --policy `{other}` (expected timestamp, every-n, or manual)"
        ))),
    }
}

/// `glodyne stream`: drive an [`EmbedderSession`] over the edge file
/// event-by-event and report each committed step.
pub fn stream(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("input")?;
    let mut events = load_stream(input)?;
    events.sort_by_key(|te| te.time);

    if let Some(addr) = opts.get_opt::<String>("addr")? {
        return stream_remote(opts, &addr, &events);
    }
    let policy = parse_policy(opts)?;
    let ann = parse_ann(opts)?;
    if let Some(shard_cfg) = parse_shards(opts)? {
        return stream_sharded(opts, &events, policy, ann, shard_cfg);
    }
    let model = GloDyNE::new(glodyne_config(opts)?)?;
    let mut session = EmbedderSession::new(model, policy)?;

    let mut out = String::new();
    let mut t = 0usize;
    for &event in &events {
        if session.apply(event.into()) {
            let r = session.reports()[t];
            let snap = session.last_snapshot().expect("committed snapshot");
            out.push_str(&report_line(t, snap.num_nodes(), snap.num_edges(), &r));
            out.push('\n');
            t += 1;
        }
    }
    if let Some(r) = session.flush() {
        let snap = session.last_snapshot().expect("committed snapshot");
        out.push_str(&report_line(t, snap.num_nodes(), snap.num_edges(), &r));
        out.push('\n');
    }
    out.push_str(&format!(
        "{} events -> {} steps, {} embedded nodes\n",
        events.len(),
        session.steps(),
        session.embedding().len()
    ));

    if let Some(nodes) = parse_query_nodes(opts)? {
        let k = opts.get("top-k", 10usize);
        // One batched scan answers every probe (bit-exact with a
        // per-node `nearest` loop). The ANN index is built once over
        // the final embedding — the per-step rebuilds of
        // `EmbedderSession::with_ann` only pay off when queries
        // interleave with steps (the serving layer) — and its scan
        // scratch is shared across the batch.
        let exact = session.nearest_batch(&nodes, k);
        let index = ann
            .as_ref()
            .map(|settings| glodyne::IvfIndex::build(session.embedding(), &settings.config));
        let mut scratch = glodyne_ann::SearchScratch::new();
        for (&node, hits) in nodes.iter().zip(&exact) {
            let query = node.0;
            let Some(vector) = session.query(node) else {
                out.push_str(&format!("node {query}: no embedding\n"));
                continue;
            };
            out.push_str(&format!("nearest neighbours of {query} (exact):\n"));
            for &(id, sim) in hits {
                out.push_str(&format!("  {:>10}  cos={sim:.4}\n", id.0));
            }
            if let (Some(settings), Some(index)) = (&ann, &index) {
                // Report the effective probe width, matching the serve
                // path's contract; SQ8 indexes re-rank against the
                // session's exact rows.
                let nprobe = index.effective_nprobe(settings.default_nprobe);
                let hits = index.search_in_with(
                    session.embedding(),
                    vector,
                    k,
                    nprobe,
                    Some(node),
                    &mut scratch,
                );
                out.push_str(&format!(
                    "nearest neighbours of {query} (ann, cells={} nprobe={nprobe}):\n",
                    index.cells()
                ));
                for (id, sim) in hits {
                    out.push_str(&format!("  {:>10}  cos={sim:.4}\n", id.0));
                }
            }
        }
    }
    Ok(out)
}

/// `glodyne stream --addr HOST:PORT`: feed the edge file to a running
/// server over the wire instead of embedding locally — ingest in
/// batches, flush, then answer `--query` probes with wire `nearest`.
/// Connect failures and `overloaded` sheds retry under one jittered
/// exponential-backoff budget (`--retry-budget` attempts); a partial
/// accept (server shed mid-batch) resumes from the first refused event
/// after a backoff delay.
fn stream_remote(opts: &Opts, addr: &str, events: &[TimedEdge]) -> Result<String, CliError> {
    let budget = opts.get("retry-budget", 5u32);
    let mut backoff = Backoff::new(budget);
    let mut sent = 0usize;
    while sent < events.len() {
        let chunk = &events[sent..(sent + 4096).min(events.len())];
        let mut line = String::from("{\"cmd\":\"ingest\",\"edges\":[");
        for (i, e) in chunk.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("[{},{},{}]", e.edge.u.0, e.edge.v.0, e.time));
        }
        line.push_str("]}");
        let resp = wire_roundtrip_backoff(addr, &line, &mut backoff)?;
        if resp.get("ok") != Some(&Json::Bool(true)) {
            return Err(CliError::Parse(format!(
                "{addr}: ingest failed: {}",
                resp.get("error").and_then(Json::as_str).unwrap_or("?")
            )));
        }
        let accepted = resp
            .get("accepted")
            .and_then(Json::as_u64)
            .unwrap_or(chunk.len() as u64) as usize;
        sent += accepted;
        if accepted < chunk.len() {
            // Partial accept: the server shed the tail. Pay a backoff
            // delay before resuming from the first refused event.
            match backoff.next_delay() {
                Some(delay) => std::thread::sleep(delay),
                None => {
                    return Err(CliError::Parse(format!(
                        "{addr}: server still overloaded after {budget} \
                         backoff attempt(s); {sent}/{} events ingested",
                        events.len()
                    )))
                }
            }
        }
    }
    let flush = wire_roundtrip_backoff(addr, "{\"cmd\":\"flush\"}", &mut backoff)?;
    let mut out = format!(
        "{} events -> epoch {} at {addr}\n",
        events.len(),
        flush.get("epoch").and_then(Json::as_u64).unwrap_or(0),
    );
    if let Some(nodes) = parse_query_nodes(opts)? {
        let k = opts.get("top-k", 10usize);
        for node in nodes {
            let req = format!("{{\"cmd\":\"nearest\",\"node\":{},\"k\":{k}}}", node.0);
            let resp = wire_roundtrip_backoff(addr, &req, &mut backoff)?;
            if resp.get("ok") != Some(&Json::Bool(true)) {
                out.push_str(&format!(
                    "node {}: {}\n",
                    node.0,
                    resp.get("error").and_then(Json::as_str).unwrap_or("?")
                ));
                continue;
            }
            out.push_str(&format!("nearest neighbours of {} (wire):\n", node.0));
            for hit in resp.get("neighbours").and_then(Json::as_arr).unwrap_or(&[]) {
                let pair = hit.as_arr().unwrap_or(&[]);
                out.push_str(&format!(
                    "  {:>10}  cos={:.4}\n",
                    pair.first().and_then(Json::as_u64).unwrap_or(0),
                    pair.get(1).and_then(Json::as_f64).unwrap_or(f64::NAN),
                ));
            }
        }
    }
    Ok(out)
}

/// `glodyne stream --shards N`: drive a [`ShardedState`] — partition-
/// routed per-shard sessions with halo-mirrored boundary edges — over
/// the edge file and report the per-shard outcome; `--query` answers
/// through the owner-filtered fan-out merge.
fn stream_sharded(
    opts: &Opts,
    events: &[TimedEdge],
    policy: EpochPolicy,
    ann: Option<AnnSettings>,
    shard_cfg: ShardConfig,
) -> Result<String, CliError> {
    let sessions = shard_sessions(opts, policy, shard_cfg.shards, ann.as_ref())?;
    let mut state = ShardedState::new(sessions, shard_cfg).map_err(CliError::Config)?;
    state.ingest(events);
    state.flush();

    let mut out = String::new();
    let rs = state.router().stats();
    out.push_str(&format!(
        "{} events -> {} steps across {} shards \
         ({} live nodes, {} edges, {} rebalance(s))\n",
        events.len(),
        state.steps(),
        shard_cfg.shards,
        rs.nodes,
        rs.edges,
        rs.rebalances,
    ));
    for (shard, sess) in state.sessions().iter().enumerate() {
        out.push_str(&format!(
            "  shard {shard}: {} steps, {} embedded rows\n",
            sess.steps(),
            sess.embedding().len()
        ));
    }

    if let Some(nodes) = parse_query_nodes(opts)? {
        let k = opts.get("top-k", 10usize);
        for &node in &nodes {
            let query = node.0;
            if state.query(node).is_none() {
                out.push_str(&format!("node {query}: no embedding\n"));
                continue;
            }
            out.push_str(&format!(
                "nearest neighbours of {query} (sharded fan-out, exact):\n"
            ));
            for (id, sim) in state.nearest(node, k) {
                out.push_str(&format!("  {:>10}  cos={sim:.4}\n", id.0));
            }
            if let Some(settings) = &ann {
                let nprobe = settings.default_nprobe;
                out.push_str(&format!(
                    "nearest neighbours of {query} (sharded fan-out, ann nprobe={nprobe}):\n"
                ));
                for (id, sim) in state.nearest_approx(node, k, nprobe) {
                    out.push_str(&format!("  {:>10}  cos={sim:.4}\n", id.0));
                }
            }
        }
    }
    Ok(out)
}

/// Build and bind the serving process for `glodyne serve`, returning
/// the running server plus the preamble to print before blocking.
///
/// Split from [`serve`] so tests can bind port 0, read the actual
/// address off the [`Server`], and drive the wire protocol directly.
pub fn start_server(opts: &Opts) -> Result<(Server, String), CliError> {
    // Fault injection opt-in: GLODYNE_CHAOS="site=rule;..." arms the
    // failpoint registry for the whole process. Off (one relaxed
    // atomic load per site) unless the variable is set.
    let chaos_armed = glodyne_chaos::configure_from_env()
        .map_err(|e| CliError::Usage(format!("bad GLODYNE_CHAOS spec: {e}")))?;
    let bind = opts.get_str("bind", "127.0.0.1:7878");
    let policy = parse_policy(opts)?;
    let ann = parse_ann(opts)?;
    let shard_cfg = parse_shards(opts)?;
    let (telemetry, probe, slow_us) = parse_telemetry(opts)?;
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        max_connections: opts.get("threads", 64usize).max(1),
        queue_capacity: opts.get("queue", 1024usize).max(1),
        ann,
        telemetry,
        probe,
        slow_query_us: slow_us.unwrap_or(defaults.slow_query_us),
        fast_fail: opts.get("fast-fail", false),
        default_deadline_ms: opts.get_opt("deadline-ms")?,
        stall_after_ms: opts.get("stall-after-ms", defaults.stall_after_ms),
        write_timeout_ms: opts
            .get_opt("write-timeout-ms")?
            .map(Some)
            .unwrap_or(defaults.write_timeout_ms),
        ..defaults
    };
    let durable = parse_durable(opts)?;
    let bind_err = |e: ServeError| match e {
        ServeError::Bind { addr, source } => CliError::Io {
            context: format!("cannot bind {addr}"),
            source,
        },
        ServeError::Durability(source) => CliError::Io {
            context: "durable lineage failure".to_string(),
            source,
        },
        other => CliError::Usage(other.to_string()),
    };

    let mut preamble = String::new();
    if chaos_armed {
        preamble
            .push_str("chaos: failpoints ARMED from GLODYNE_CHAOS — not for production serving\n");
    }
    if durable.is_some() {
        // Replay determinism requires single-threaded SGNS: a parallel
        // reduction reorders float adds and the recovered state would
        // drift from the logged run.
        preamble.push_str("durable: sgns forced single-threaded for deterministic replay\n");
    }
    let server = if let Some(shard_cfg) = shard_cfg {
        if let Some((dir, dcfg)) = &durable {
            glodyne_config(opts)?; // surface config errors before touching disk
            let make = |shard: usize| {
                let mut mcfg = glodyne_config(opts).expect("embedder config validated above");
                mcfg.sgns.parallel = false;
                mcfg.walk.seed = mcfg.walk.seed.wrapping_add(shard as u64);
                mcfg.sgns.seed = mcfg.sgns.seed.wrapping_add(shard as u64);
                GloDyNE::new(mcfg).expect("embedder config validated above")
            };
            let (server, recovered) =
                Server::bind_sharded_durable(dir, shard_cfg, *dcfg, policy, bind, cfg, make)
                    .map_err(bind_err)?;
            match &recovered {
                Some(provenance) => {
                    preamble.push_str(&format!("durable: recovered from {provenance}\n"));
                    if opts.get_opt::<String>("input")?.is_some() {
                        preamble.push_str(
                            "warm start skipped: existing durable lineage takes precedence\n",
                        );
                    }
                }
                None => {
                    preamble.push_str(&format!(
                        "durable: fresh sharded lineage at {} \
                         (fsync={}, snapshot every {} epoch(s))\n",
                        dir.display(),
                        dcfg.fsync,
                        dcfg.snapshot_every,
                    ));
                    // A fresh lineage warm-starts through the running
                    // router so the edge file lands in the WAL too.
                    if let Some(input) = opts.get_opt::<String>("input")? {
                        let mut events = load_stream(&input)?;
                        events.sort_by_key(|te| te.time);
                        let gevents: Vec<glodyne_graph::GraphEvent> =
                            events.iter().map(|&te| te.into()).collect();
                        let sharded = server.sharded().expect("sharded server");
                        sharded
                            .ingest(&gevents)
                            .and_then(|_| sharded.flush())
                            .map_err(|e| CliError::Usage(e.to_string()))?;
                        preamble.push_str(&format!(
                            "warm start: {} events -> epoch {} across {} shards\n",
                            events.len(),
                            server.stats().epoch,
                            shard_cfg.shards,
                        ));
                    }
                }
            }
            preamble.push_str(&format!(
                "sharded: {} partition-routed shards (epsilon={} seed={}; \
                 stats reports a per-shard break-down)\n",
                shard_cfg.shards, shard_cfg.epsilon, shard_cfg.seed
            ));
            server
        } else {
            // Sharded mode: the per-shard IVF indexes come from the
            // serve layer (ServerConfig.ann), not the sessions.
            let sessions = shard_sessions(opts, policy, shard_cfg.shards, None)?;
            let server = Server::bind_sharded(sessions, shard_cfg, bind, cfg).map_err(bind_err)?;
            // Warm start rides the running session's router: ingest +
            // flush complete before the preamble (and hence the
            // operator's go-ahead) is printed.
            if let Ok(Some(input)) = opts.get_opt::<String>("input") {
                let mut events = load_stream(&input)?;
                events.sort_by_key(|te| te.time);
                let gevents: Vec<glodyne_graph::GraphEvent> =
                    events.iter().map(|&te| te.into()).collect();
                let sharded = server.sharded().expect("sharded server");
                sharded
                    .ingest(&gevents)
                    .and_then(|_| sharded.flush())
                    .map_err(|e| CliError::Usage(e.to_string()))?;
                let stats = server.stats();
                preamble.push_str(&format!(
                    "warm start: {} events -> epoch {} across {} shards, {} live nodes\n",
                    events.len(),
                    stats.epoch,
                    shard_cfg.shards,
                    stats.nodes,
                ));
            }
            preamble.push_str(&format!(
                "sharded: {} partition-routed shards (epsilon={} seed={}; \
                 stats reports a per-shard break-down)\n",
                shard_cfg.shards, shard_cfg.epsilon, shard_cfg.seed
            ));
            server
        }
    } else if let Some((dir, dcfg)) = &durable {
        let mut mcfg = glodyne_config(opts)?;
        mcfg.sgns.parallel = false;
        let inspect_err = |source: std::io::Error| CliError::Io {
            context: format!("cannot inspect {}", dir.display()),
            source,
        };
        let has_lineage = !list_snapshots(dir).map_err(&inspect_err)?.is_empty()
            || !list_segments(dir).map_err(&inspect_err)?.is_empty();
        if has_lineage {
            let make = || {
                let mut mcfg = glodyne_config(opts).expect("embedder config validated above");
                mcfg.sgns.parallel = false;
                GloDyNE::new(mcfg).expect("embedder config validated above")
            };
            let (durable_session, report) =
                DurableSession::recover(dir, *dcfg, policy, false, make).map_err(|source| {
                    CliError::Io {
                        context: format!("cannot recover {}", dir.display()),
                        source,
                    }
                })?;
            preamble.push_str(&format!(
                "durable: recovered from {}\n",
                report.recovered_from
            ));
            if !report.wal_clean {
                preamble.push_str("durable: wal tail was torn and has been healed\n");
            }
            if opts.get_opt::<String>("input")?.is_some() {
                preamble
                    .push_str("warm start skipped: existing durable lineage takes precedence\n");
            }
            Server::bind_durable(durable_session, Some(report.recovered_from), bind, cfg)
                .map_err(bind_err)?
        } else {
            let model = GloDyNE::new(mcfg)?;
            let mut session = EmbedderSession::new(model, policy)?;
            // Warm start before the lineage exists: the edge file is
            // committed and then frozen into the initial snapshot, so
            // it never needs to be replayed from the WAL.
            if let Ok(Some(input)) = opts.get_opt::<String>("input") {
                let mut events = load_stream(&input)?;
                events.sort_by_key(|te| te.time);
                session.ingest(&events);
                session.flush();
                preamble.push_str(&format!(
                    "warm start: {} events -> {} steps, {} embedded nodes\n",
                    events.len(),
                    session.steps(),
                    session.embedding().len()
                ));
            }
            let durable_session =
                DurableSession::create(dir, session, *dcfg).map_err(|source| CliError::Io {
                    context: format!("cannot create durable lineage in {}", dir.display()),
                    source,
                })?;
            preamble.push_str(&format!(
                "durable: fresh lineage at {} (fsync={}, snapshot every {} epoch(s))\n",
                dir.display(),
                dcfg.fsync,
                dcfg.snapshot_every,
            ));
            Server::bind_durable(durable_session, None, bind, cfg).map_err(bind_err)?
        }
    } else {
        let model = GloDyNE::new(glodyne_config(opts)?)?;
        let mut session = EmbedderSession::new(model, policy)?;
        // Optional warm start: replay an edge file through the session
        // (and commit it) before the first connection is accepted.
        if let Ok(Some(input)) = opts.get_opt::<String>("input") {
            let mut events = load_stream(&input)?;
            events.sort_by_key(|te| te.time);
            session.ingest(&events);
            session.flush();
            preamble.push_str(&format!(
                "warm start: {} events -> {} steps, {} embedded nodes\n",
                events.len(),
                session.steps(),
                session.embedding().len()
            ));
        }
        Server::bind(session, bind, cfg).map_err(bind_err)?
    };
    if let Some(settings) = &ann {
        let storage = if settings.config.quantize {
            format!(
                ", sq8 posting lists, rerank x{}",
                settings.config.rerank_factor
            )
        } else {
            String::new()
        };
        preamble.push_str(&format!(
            "ann: ivf index per epoch (cells={} nprobe={}{storage}; \
             request with {{\"cmd\":\"nearest\",...,\"mode\":\"ann\"}})\n",
            settings.config.cells, settings.default_nprobe
        ));
    }
    if telemetry {
        preamble.push_str(
            "telemetry: metrics registry on \
             ({\"cmd\":\"metrics\"} scrapes Prometheus text, stats carries a telemetry object)\n",
        );
        if let Some(p) = &probe {
            if ann.is_some() {
                preamble.push_str(&format!(
                    "telemetry: quality probe every {}ms \
                     (recall@{} over {} sampled nodes, seed {})\n",
                    p.period_ms, p.k, p.sample, p.seed
                ));
            } else {
                preamble.push_str("telemetry: quality probe idle (no --ann index to probe)\n");
            }
        }
    }
    preamble.push_str(&format!(
        "serving on {} (line-delimited JSON; send {{\"cmd\":\"shutdown\"}} to stop)\n",
        server.local_addr()
    ));
    Ok((server, preamble))
}

/// `glodyne serve`: run the TCP serving process until a client sends
/// the `shutdown` sentinel (or the process is killed).
pub fn serve(opts: &Opts) -> Result<String, CliError> {
    let (server, preamble) = start_server(opts)?;
    // The preamble must reach the operator *before* the blocking join —
    // it carries the bound address.
    print!("{preamble}");
    std::io::Write::flush(&mut std::io::stdout())?;
    let served = server.join();
    Ok(format!("shut down cleanly after {served} connection(s)\n"))
}

/// Jittered exponential backoff with a retry budget, for wire requests
/// against a server that is down (connect refused) or shedding load
/// (`overloaded` responses). Full jitter — the delay is uniform in
/// `[base/2, base)` per doubling — so a fleet of retrying clients does
/// not re-converge on the same instant.
struct Backoff {
    attempt: u32,
    budget: u32,
    rng: u64,
}

/// SplitMix64 step: cheap, decent jitter without a rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Backoff {
    const BASE_MS: u64 = 100;
    const CAP_DOUBLINGS: u32 = 6; // 100ms .. 6.4s

    fn new(budget: u32) -> Self {
        Backoff {
            attempt: 0,
            budget,
            // Seed per process so concurrent CLI invocations jitter
            // differently; determinism is not a goal on this path.
            rng: 0x5eed ^ u64::from(std::process::id()),
        }
    }

    /// The next delay to sleep before retrying, `None` once the budget
    /// is spent.
    fn next_delay(&mut self) -> Option<std::time::Duration> {
        if self.attempt >= self.budget {
            return None;
        }
        let full = Self::BASE_MS << self.attempt.min(Self::CAP_DOUBLINGS);
        self.attempt += 1;
        let half = (full / 2).max(1);
        let jitter = splitmix64(&mut self.rng) % half;
        Some(std::time::Duration::from_millis(half + jitter))
    }
}

/// One wire round-trip: connect, send one request line, parse the one
/// response line.
fn wire_roundtrip(addr: &str, request: &str) -> Result<Json, CliError> {
    use std::io::{BufRead, Write};
    let conn_err = |source: std::io::Error| CliError::Io {
        context: format!("cannot reach server at {addr}"),
        source,
    };
    let stream = std::net::TcpStream::connect(addr).map_err(conn_err)?;
    let _ = stream.set_nodelay(true); // one-line round-trips: avoid Nagle stalls
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(conn_err)?;
    let mut writer = stream.try_clone().map_err(conn_err)?;
    writer.write_all(request.as_bytes()).map_err(conn_err)?;
    writer.write_all(b"\n").map_err(conn_err)?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(conn_err)?;
    if line.is_empty() {
        return Err(CliError::Parse(format!("{addr}: connection closed")));
    }
    json::parse(line.trim_end())
        .map_err(|e| CliError::Parse(format!("bad response from {addr}: {e}")))
}

/// [`wire_roundtrip`] behind a [`Backoff`]: retries connect failures
/// and `overloaded` responses; every other outcome (including other
/// structured errors) returns immediately.
fn wire_roundtrip_backoff(
    addr: &str,
    request: &str,
    backoff: &mut Backoff,
) -> Result<Json, CliError> {
    loop {
        let retry_after = match wire_roundtrip(addr, request) {
            Ok(resp) => {
                let kind = resp.get("kind").and_then(Json::as_str);
                if kind == Some("overloaded") {
                    backoff.next_delay()
                } else {
                    return Ok(resp);
                }
            }
            Err(CliError::Io { .. }) => backoff.next_delay(),
            Err(e) => return Err(e),
        };
        match retry_after {
            Some(delay) => std::thread::sleep(delay),
            None => {
                // Budget spent: surface the final attempt's outcome.
                return wire_roundtrip(addr, request);
            }
        }
    }
}

/// One wire round-trip: fetch the `stats` object from a running server.
fn fetch_stats(addr: &str, backoff: &mut Backoff) -> Result<Json, CliError> {
    wire_roundtrip_backoff(addr, "{\"cmd\":\"stats\"}", backoff)
}

fn stat_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// `n=<count> p50=<..> p99=<..> max=<..>` for one histogram snapshot
/// object out of the stats telemetry section.
fn fmt_hist(h: &Json) -> String {
    format!(
        "n={} p50={} p99={} max={}",
        stat_u64(h, "count"),
        stat_u64(h, "p50"),
        stat_u64(h, "p99"),
        stat_u64(h, "max"),
    )
}

/// Render one `stats` response for the terminal: the core serving
/// counters always, the telemetry section when the server runs with
/// `--telemetry` (and within it, only the sub-sections that exist).
fn render_stats(stats: &Json) -> String {
    let mut out = format!(
        "epoch {}  nodes {}  dim {}\n\
         queue: depth {}/{}  high-water {}  accepted {}\n",
        stat_u64(stats, "epoch"),
        stat_u64(stats, "nodes"),
        stat_u64(stats, "dim"),
        stat_u64(stats, "queue_depth"),
        stat_u64(stats, "queue_capacity"),
        stat_u64(stats, "queue_high_water"),
        stat_u64(stats, "events_accepted"),
    );
    if let Some(ann) = stats.get("ann").filter(|a| **a != Json::Null) {
        out.push_str(&format!(
            "ann: cells={} nprobe={} storage={} index={}B\n",
            stat_u64(ann, "cells"),
            stat_u64(ann, "nprobe_default"),
            ann.get("storage").and_then(Json::as_str).unwrap_or("?"),
            stat_u64(ann, "index_bytes"),
        ));
    }
    if let Some(shards) = stats.get("shards").and_then(Json::as_arr) {
        out.push_str(&format!("shards: {}\n", shards.len()));
        for sh in shards {
            out.push_str(&format!(
                "  shard {}: epoch {} nodes {} queue {} accepted {}\n",
                stat_u64(sh, "shard"),
                stat_u64(sh, "epoch"),
                stat_u64(sh, "nodes"),
                stat_u64(sh, "queue_depth"),
                stat_u64(sh, "events_accepted"),
            ));
        }
    }
    if let Some(h) = stats.get("health").filter(|h| **h != Json::Null) {
        let degraded = h.get("degraded") == Some(&Json::Bool(true));
        let alive = h.get("trainer_alive") != Some(&Json::Bool(false));
        out.push_str(&format!(
            "health: {}  trainer {}  stale epochs {}  stalled {}ms\n",
            if degraded { "DEGRADED" } else { "ok" },
            if alive { "alive" } else { "gone" },
            stat_u64(h, "stale_epochs"),
            stat_u64(h, "stalled_ms"),
        ));
    }
    if let Some(r) = stats.get("rebalance").filter(|r| **r != Json::Null) {
        out.push_str(&format!(
            "rebalance: {} batch(es)  {} migrated  {} pending\n",
            stat_u64(r, "rebalance_batches"),
            stat_u64(r, "migrated_nodes"),
            stat_u64(r, "pending_migrations"),
        ));
    }
    let Some(t) = stats.get("telemetry").filter(|t| **t != Json::Null) else {
        out.push_str("telemetry: off (serve with --telemetry)\n");
        return out;
    };
    out.push_str("telemetry:\n");
    if let Some(Json::Obj(cmds)) = t.get("wire_latency_us") {
        out.push_str("  wire latency (us):\n");
        for (cmd, h) in cmds {
            out.push_str(&format!("    {cmd:<14} {}\n", fmt_hist(h)));
        }
    }
    if let Some(Json::Obj(stages)) = t.get("stage_us") {
        out.push_str("  trainer stages (us):\n");
        for (stage, h) in stages {
            out.push_str(&format!("    {stage:<14} {}\n", fmt_hist(h)));
        }
    }
    if let Some(h) = t.get("queue_wait_us") {
        out.push_str(&format!("  queue wait (us): {}\n", fmt_hist(h)));
    }
    if let Some(h) = t.get("freshness_lag_us") {
        out.push_str(&format!("  freshness lag (us): {}\n", fmt_hist(h)));
    }
    if let Some(d) = t.get("durability").filter(|d| **d != Json::Null) {
        out.push_str("  durability (us):\n");
        for (key, label) in [
            ("wal_append_us", "wal append"),
            ("wal_fsync_us", "wal fsync"),
            ("snapshot_write_us", "snapshot"),
        ] {
            if let Some(h) = d.get(key) {
                out.push_str(&format!("    {label:<14} {}\n", fmt_hist(h)));
            }
        }
    }
    if let Some(p) = t.get("probe").filter(|p| **p != Json::Null) {
        out.push_str(&format!(
            "  probe: recall@{} = {:.4} over {} round(s), latency {}\n",
            stat_u64(p, "k"),
            p.get("recall").and_then(Json::as_f64).unwrap_or(0.0),
            stat_u64(p, "runs"),
            p.get("latency_us").map(fmt_hist).unwrap_or_default(),
        ));
    }
    if let Some(slow) = t.get("slow_queries").and_then(Json::as_arr) {
        if slow.is_empty() {
            out.push_str("  slow queries: none\n");
        } else {
            out.push_str(&format!("  slow queries (last {}):\n", slow.len()));
            for q in slow {
                out.push_str(&format!(
                    "    {:<14} nodes={} epoch={} {}us\n",
                    q.get("cmd").and_then(Json::as_str).unwrap_or("?"),
                    stat_u64(q, "nodes"),
                    stat_u64(q, "epoch"),
                    stat_u64(q, "micros"),
                ));
            }
        }
    }
    out
}

/// `glodyne stats`: one-shot (or `--watch` periodic) pretty-printed
/// snapshot of a running server's `stats` object.
pub fn stats_cmd(opts: &Opts) -> Result<String, CliError> {
    let addr = opts.get_str("addr", "127.0.0.1:7878");
    let budget = opts.get("retry-budget", 5u32);
    if !opts.get("watch", false) {
        return Ok(render_stats(&fetch_stats(addr, &mut Backoff::new(budget))?));
    }
    let interval = std::time::Duration::from_millis(opts.get("interval-ms", 2000u64).max(1));
    let mut frames = 0u64;
    loop {
        // Fresh budget per frame: a server that sheds for one scrape
        // but recovers keeps the watch alive indefinitely.
        match fetch_stats(addr, &mut Backoff::new(budget)) {
            Ok(stats) => {
                frames += 1;
                print!("{}", render_stats(&stats));
                println!("---");
                std::io::Write::flush(&mut std::io::stdout())?;
            }
            // The first fetch failing (after its retry budget) is an
            // error; the server going away mid-watch is a clean exit.
            Err(e) if frames == 0 => return Err(e),
            Err(_) => {
                return Ok(format!(
                    "server at {addr} went away after {frames} frame(s)\n"
                ));
            }
        }
        std::thread::sleep(interval);
    }
}

/// One lineage directory's health: every snapshot's integrity, the WAL
/// segment/record totals, and how much a restart would replay.
fn inspect_lineage(label: &str, dir: &Path) -> Result<String, CliError> {
    let ioerr = |source: std::io::Error| CliError::Io {
        context: format!("cannot inspect {}", dir.display()),
        source,
    };
    let mut out = format!("[{label}]\n");
    let snapshots = list_snapshots(dir).map_err(&ioerr)?;
    let mut floor = 0u64;
    if snapshots.is_empty() {
        out.push_str("  no snapshots\n");
    }
    for (seq, path) in &snapshots {
        match load_snapshot(path) {
            Ok(snap) => {
                let kind = match snap.kind {
                    PAYLOAD_SESSION => "session",
                    PAYLOAD_ROUTER => "router",
                    _ => "unknown",
                };
                floor = floor.max(snap.seq);
                out.push_str(&format!(
                    "  snapshot seq={} epoch={} kind={kind} payload={}B ok\n",
                    snap.seq,
                    snap.epoch,
                    snap.payload.len()
                ));
            }
            Err(e) => out.push_str(&format!(
                "  snapshot seq={seq} CORRUPT ({e}) — recovery falls back to an older one\n"
            )),
        }
    }
    let segments = list_segments(dir).map_err(&ioerr)?;
    let replayed = replay(dir).map_err(&ioerr)?;
    let events = replayed
        .records
        .iter()
        .filter(|(_, r)| matches!(r, WalRecord::Event(_)))
        .count();
    let flushes = replayed.records.len() - events;
    let pending = replayed
        .records
        .iter()
        .filter(|&&(seq, r)| seq > floor && matches!(r, WalRecord::Event(_)))
        .count();
    out.push_str(&format!(
        "  wal: {} segment(s), {events} event(s) + {flushes} flush marker(s), {}\n",
        segments.len(),
        if replayed.clean {
            "clean tail"
        } else {
            "torn tail (healed on recovery)"
        },
    ));
    out.push_str(&format!(
        "  restart replays {pending} event(s) past snapshot seq {floor}\n"
    ));
    Ok(out)
}

/// `glodyne recover`: inspect a `--data-dir` without serving from it —
/// read-only, so it is safe to run next to a live server.
pub fn recover(opts: &Opts) -> Result<String, CliError> {
    let dir = PathBuf::from(opts.require("data-dir")?);
    if !dir.is_dir() {
        return Err(CliError::Usage(format!(
            "--data-dir {}: not a directory",
            dir.display()
        )));
    }
    let mut out = String::new();
    let router = dir.join("router");
    if router.is_dir() {
        out.push_str(&format!("sharded durable lineage at {}\n", dir.display()));
        out.push_str(&inspect_lineage("router", &router)?);
        let mut shards: Vec<(usize, PathBuf)> = std::fs::read_dir(&dir)
            .map_err(|source| CliError::Io {
                context: format!("cannot read {}", dir.display()),
                source,
            })?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let shard = e
                    .file_name()
                    .to_str()?
                    .strip_prefix("shard-")?
                    .parse::<usize>()
                    .ok()?;
                Some((shard, e.path()))
            })
            .collect();
        shards.sort_unstable_by_key(|&(shard, _)| shard);
        for (shard, path) in &shards {
            out.push_str(&inspect_lineage(&format!("shard-{shard}"), path)?);
        }
    } else {
        out.push_str(&format!("durable lineage at {}\n", dir.display()));
        out.push_str(&inspect_lineage("session", &dir)?);
    }
    Ok(out)
}

/// `glodyne partition`: balanced k-way partition of the final snapshot.
pub fn partition_cmd(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("input")?;
    let stream = load_stream(input)?;
    let net = cut_snapshots(stream, 1);
    let g = net.snapshot(0);
    let cfg = PartitionConfig {
        k: opts.get("k", 8usize),
        epsilon: opts.get("epsilon", 0.1),
        seed: opts.get("seed", 0u64),
        ..Default::default()
    };
    let p = partition(g, &cfg);
    let mut out = String::with_capacity(g.num_nodes() * 8);
    out.push_str(&format!(
        "# {} nodes, {} parts, edge cut {}, imbalance {:.3}\n",
        g.num_nodes(),
        p.k,
        p.edge_cut(g),
        p.imbalance(g.num_nodes())
    ));
    for l in 0..g.num_nodes() {
        out.push_str(&format!("{} {}\n", g.node_id(l).0, p.assignment[l]));
    }
    Ok(out)
}

/// `glodyne evaluate`: GR MeanP@k and LP AUC of GloDyNE on the stream.
pub fn evaluate(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("input")?;
    let n_snapshots = opts.get("snapshots", 10usize);
    let stream = load_stream(input)?;
    let net = cut_snapshots(stream, n_snapshots);
    let snaps = net.snapshots();

    let mut model = GloDyNE::new(glodyne_config(opts)?)?;
    let embeddings: Vec<_> = run_over_reports(&mut model, snaps)
        .into_iter()
        .map(|(emb, _)| emb)
        .collect();

    let ks = [1usize, 5, 10, 20, 40];
    let mut gr_acc = vec![0.0; ks.len()];
    for (e, s) in embeddings.iter().zip(snaps) {
        for (a, v) in gr_acc.iter_mut().zip(mean_precision_at_k(e, s, &ks)) {
            *a += v;
        }
    }
    gr_acc.iter_mut().for_each(|a| *a /= snaps.len() as f64);

    let mut auc_acc = 0.0;
    let mut auc_n = 0usize;
    for t in 0..snaps.len().saturating_sub(1) {
        let test = build_test_set(&snaps[t], &snaps[t + 1], opts.get("seed", 0u64) + t as u64);
        if !test.is_empty() {
            auc_acc += link_prediction_auc(&embeddings[t], &test);
            auc_n += 1;
        }
    }

    let mut out = String::new();
    out.push_str("graph reconstruction (mean over time steps):\n");
    for (k, v) in ks.iter().zip(&gr_acc) {
        out.push_str(&format!("  MeanP@{k:<3} = {:.4}\n", v));
    }
    if auc_n > 0 {
        out.push_str(&format!(
            "link prediction AUC (mean over transitions) = {:.4}\n",
            auc_acc / auc_n as f64
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::NodeId;
    use std::time::Duration;

    fn stream_fixture() -> Vec<TimedEdge> {
        // Growing triangle fan over 30 time units.
        let mut stream = Vec::new();
        for t in 0..30u64 {
            let v = t as u32;
            stream.push(TimedEdge::new(NodeId(v), NodeId(v + 1), t));
            stream.push(TimedEdge::new(NodeId(v), NodeId(v + 2), t));
        }
        stream
    }

    fn write_fixture(dir: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("edges.txt");
        let mut f = std::fs::File::create(&input).unwrap();
        glodyne_graph::io::write_edge_stream(&mut f, &stream_fixture()).unwrap();
        input
    }

    #[test]
    fn backoff_delays_double_with_jitter_then_exhaust() {
        let mut b = Backoff::new(3);
        let mut prev_half = 0u64;
        for attempt in 0..3u32 {
            let d = b.next_delay().expect("within budget");
            let half = (Backoff::BASE_MS << attempt) / 2;
            // Full jitter: uniform in [half, 2*half).
            assert!(d >= Duration::from_millis(half), "attempt {attempt}: {d:?}");
            assert!(
                d < Duration::from_millis(half * 2),
                "attempt {attempt}: {d:?}"
            );
            assert!(half > prev_half);
            prev_half = half;
        }
        assert_eq!(b.next_delay(), None, "budget of 3 spent");
        assert_eq!(b.next_delay(), None, "stays exhausted");
    }

    #[test]
    fn backoff_delay_caps_at_max_doublings() {
        let mut b = Backoff::new(64);
        let mut last = Duration::ZERO;
        for _ in 0..20 {
            last = b.next_delay().unwrap();
        }
        let cap_half = (Backoff::BASE_MS << Backoff::CAP_DOUBLINGS) / 2;
        assert!(last < Duration::from_millis(cap_half * 2));
    }

    #[test]
    fn cut_snapshots_quantiles() {
        let net = cut_snapshots(stream_fixture(), 3);
        assert_eq!(net.len(), 3);
        // Monotone growth across snapshots.
        assert!(net.snapshot(0).num_edges() <= net.snapshot(1).num_edges());
        assert!(net.snapshot(1).num_edges() <= net.snapshot(2).num_edges());
        // Final snapshot holds the full (LCC of the) stream.
        assert_eq!(net.snapshot(2).num_edges(), 60);
    }

    #[test]
    fn cut_snapshots_dedups_duplicate_timestamps() {
        // Regression: all edges share one timestamp, so every quantile
        // collapses onto it. The old code produced `n` identical
        // snapshots; now the cutoffs are deduplicated to one.
        let stream: Vec<TimedEdge> = (0..10u32)
            .map(|i| TimedEdge::new(NodeId(i), NodeId(i + 1), 7))
            .collect();
        let net = cut_snapshots(stream, 5);
        assert_eq!(net.len(), 1, "one distinct timestamp => one snapshot");
        assert_eq!(net.snapshot(0).num_edges(), 10);

        // Two distinct timestamps, ten requested cuts => two snapshots.
        let stream: Vec<TimedEdge> = (0..10u32)
            .map(|i| TimedEdge::new(NodeId(i), NodeId(i + 1), (i >= 5) as u64))
            .collect();
        let net = cut_snapshots(stream, 10);
        assert_eq!(net.len(), 2);
        assert!(net.snapshot(0).num_edges() < net.snapshot(1).num_edges());
    }

    #[test]
    fn cut_snapshots_degenerate_inputs() {
        assert!(cut_snapshots(Vec::new(), 5).is_empty());
        assert!(cut_snapshots(stream_fixture(), 0).is_empty());
    }

    #[test]
    fn end_to_end_embed_and_evaluate() {
        let input = write_fixture("glodyne_cli_test");
        let out_dir = input.parent().unwrap().join("emb");
        let opts = Opts::parse(&[
            "--input".into(),
            input.display().to_string(),
            "--snapshots".into(),
            "3".into(),
            "--out-dir".into(),
            out_dir.display().to_string(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
        ]);
        let report = embed(&opts).unwrap();
        assert!(report.contains("t=2"));
        assert!(report.contains("train="), "step report line present");
        // Written TSVs parse back.
        let f = std::fs::File::open(out_dir.join("embedding_t002.tsv")).unwrap();
        let emb = persist::read_tsv(std::io::BufReader::new(f)).unwrap();
        assert!(emb.len() > 10);
        assert_eq!(emb.dim(), 8);

        let eval = evaluate(&opts).unwrap();
        assert!(eval.contains("MeanP@1"));
    }

    #[test]
    fn stream_command_end_to_end() {
        let input = write_fixture("glodyne_cli_stream");
        let opts = Opts::parse(&[
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "every-n".into(),
            "--every".into(),
            "20".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
            "--query".into(),
            "0".into(),
            "--top-k".into(),
            "3".into(),
        ]);
        let out = stream(&opts).unwrap();
        assert!(out.contains("t=0"), "{out}");
        assert!(out.contains("steps"), "{out}");
        assert!(out.contains("nearest neighbours of 0 (exact)"), "{out}");
        assert!(!out.contains("(ann,"), "no ann block without --ann: {out}");

        let bad = Opts::parse(&[
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "hourly".into(),
        ]);
        assert!(matches!(stream(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn stream_command_with_ann() {
        let input = write_fixture("glodyne_cli_stream_ann");
        let mut args = vec![
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "manual".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
            "--query".into(),
            "0".into(),
            "--top-k".into(),
            "3".into(),
            "--ann".into(),
            "--cells".into(),
            "4".into(),
            "--nprobe".into(),
            "4".into(),
        ];
        let out = stream(&Opts::parse(&args)).unwrap();
        assert!(out.contains("nearest neighbours of 0 (exact)"), "{out}");
        assert!(
            out.contains("nearest neighbours of 0 (ann, cells=4 nprobe=4)"),
            "{out}"
        );

        // Degenerate ANN parameters surface as config errors.
        args.extend(["--cells".into(), "0".into()]);
        let err = stream(&Opts::parse(&args)).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
        assert!(err.to_string().contains("cells"), "{err}");
    }

    #[test]
    fn stream_command_batch_query_and_sq8() {
        let input = write_fixture("glodyne_cli_stream_batch");
        let mut args = vec![
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "manual".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
            "--query".into(),
            "0,5,404".into(),
            "--top-k".into(),
            "3".into(),
            "--ann".into(),
            "--cells".into(),
            "4".into(),
            "--nprobe".into(),
            "4".into(),
            "--sq8".into(),
            "--rerank".into(),
            "8".into(),
        ];
        let out = stream(&Opts::parse(&args)).unwrap();
        // Every probe in the comma-separated list is answered; the
        // unknown one degrades per node, not per request.
        assert!(out.contains("nearest neighbours of 0 (exact)"), "{out}");
        assert!(out.contains("nearest neighbours of 5 (exact)"), "{out}");
        assert!(
            out.contains("nearest neighbours of 5 (ann, cells=4 nprobe=4)"),
            "{out}"
        );
        assert!(out.contains("node 404: no embedding"), "{out}");

        // A malformed id anywhere in the list is a usage error.
        let query_idx = args.iter().position(|a| a == "0,5,404").unwrap();
        args[query_idx] = "0,x".into();
        let err = stream(&Opts::parse(&args)).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("invalid node id `x`"), "{err}");

        // --rerank is validated like the other ANN knobs.
        args[query_idx] = "0".into();
        args.extend(["--rerank".into(), "0".into()]);
        let err = stream(&Opts::parse(&args)).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
        assert!(err.to_string().contains("rerank"), "{err}");
    }

    #[test]
    fn stream_command_sharded() {
        let input = write_fixture("glodyne_cli_stream_sharded");
        let mut args = vec![
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "manual".into(),
            "--shards".into(),
            "2".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
            "--query".into(),
            "0".into(),
            "--top-k".into(),
            "3".into(),
        ];
        let out = stream(&Opts::parse(&args)).unwrap();
        assert!(out.contains("across 2 shards"), "{out}");
        assert!(out.contains("shard 0:"), "{out}");
        assert!(out.contains("shard 1:"), "{out}");
        assert!(
            out.contains("nearest neighbours of 0 (sharded fan-out, exact)"),
            "{out}"
        );

        // --shards 1 takes the unsharded fast path.
        args[5] = "1".into();
        let out = stream(&Opts::parse(&args)).unwrap();
        assert!(out.contains("nearest neighbours of 0 (exact)"), "{out}");

        // Degenerate shard parameters surface as config errors.
        args[5] = "2".into();
        args.extend(["--drift".into(), "0".into()]);
        let err = stream(&Opts::parse(&args)).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
        assert!(err.to_string().contains("drift"), "{err}");
    }

    #[test]
    fn serve_command_sharded() {
        use std::io::{BufRead, BufReader, Write};
        let input = write_fixture("glodyne_cli_serve_sharded");
        let opts = Opts::parse(&[
            "--bind".into(),
            "127.0.0.1:0".into(),
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "manual".into(),
            "--shards".into(),
            "2".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
        ]);
        let (server, preamble) = start_server(&opts).unwrap();
        assert!(preamble.contains("warm start"), "{preamble}");
        assert!(
            preamble.contains("sharded: 2 partition-routed shards"),
            "{preamble}"
        );

        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut round_trip = move |req: &str| {
            let mut w = stream.try_clone().unwrap();
            w.write_all(req.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        // The warm start committed through the router; reads fan out.
        let stats = round_trip(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"shards\":["), "{stats}");
        let q = round_trip(r#"{"cmd":"query","node":0}"#);
        assert!(q.contains("\"ok\":true"), "{q}");
        let near = round_trip(r#"{"cmd":"nearest","node":0,"k":3}"#);
        assert!(near.contains("\"neighbours\""), "{near}");
        round_trip(r#"{"cmd":"shutdown"}"#);
        server.join();
    }

    #[test]
    fn serve_command_end_to_end() {
        use std::io::{BufRead, BufReader, Write};
        let input = write_fixture("glodyne_cli_serve");
        let opts = Opts::parse(&[
            "--bind".into(),
            "127.0.0.1:0".into(),
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "manual".into(),
            "--threads".into(),
            "4".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
        ]);
        let (server, preamble) = start_server(&opts).unwrap();
        assert!(preamble.contains("warm start"), "{preamble}");
        assert!(preamble.contains("serving on"), "{preamble}");

        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut round_trip = move |req: &str| {
            let mut w = stream.try_clone().unwrap();
            w.write_all(req.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        // The warm start committed one epoch; reads work immediately.
        let stats = round_trip(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"epoch\":1"), "{stats}");
        let q = round_trip(r#"{"cmd":"query","node":0}"#);
        assert!(q.contains("\"ok\":true"), "{q}");
        let bye = round_trip(r#"{"cmd":"shutdown"}"#);
        assert!(bye.contains("\"ok\":true"), "{bye}");
        assert_eq!(server.join(), 1);

        // A bad policy is a usage error before any socket is opened.
        let bad = Opts::parse(&[
            "--bind".into(),
            "127.0.0.1:0".into(),
            "--policy".into(),
            "yearly".into(),
        ]);
        assert!(matches!(start_server(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_command_with_ann() {
        use std::io::{BufRead, BufReader, Write};
        let input = write_fixture("glodyne_cli_serve_ann");
        let opts = Opts::parse(&[
            "--bind".into(),
            "127.0.0.1:0".into(),
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "manual".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
            "--ann".into(),
            "--cells".into(),
            "4".into(),
            "--nprobe".into(),
            "2".into(),
        ]);
        let (server, preamble) = start_server(&opts).unwrap();
        assert!(preamble.contains("cells=4 nprobe=2"), "{preamble}");

        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut round_trip = move |req: &str| {
            let mut w = stream.try_clone().unwrap();
            w.write_all(req.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        let near = round_trip(r#"{"cmd":"nearest","node":0,"k":3,"mode":"ann"}"#);
        assert!(near.contains("\"mode\":\"ann\""), "{near}");
        assert!(near.contains("\"nprobe\":2"), "{near}");
        let stats = round_trip(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"cells\":4"), "{stats}");
        round_trip(r#"{"cmd":"shutdown"}"#);
        server.join();

        // --ann with a bad nprobe is a config error.
        let bad = Opts::parse(&[
            "--bind".into(),
            "127.0.0.1:0".into(),
            "--ann".into(),
            "--nprobe".into(),
            "0".into(),
        ]);
        match start_server(&bad) {
            Err(err) => assert!(matches!(err, CliError::Config(_)), "{err}"),
            Ok(_) => panic!("nprobe = 0 must be rejected"),
        }
    }

    fn durable_args(input: &std::path::Path, data_dir: &std::path::Path) -> Vec<String> {
        [
            "--bind",
            "127.0.0.1:0",
            "--input",
            &input.display().to_string(),
            "--policy",
            "manual",
            "--dim",
            "8",
            "--walks",
            "2",
            "--walk-length",
            "8",
            "--epochs",
            "1",
            "--data-dir",
            &data_dir.display().to_string(),
            "--snapshot-every",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn serve_command_durable_restart_and_recover_report() {
        use std::io::{BufRead, BufReader, Write};
        let input = write_fixture("glodyne_cli_serve_durable");
        let data_dir = std::env::temp_dir().join(format!(
            "glodyne_cli_durable_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        let opts = Opts::parse(&durable_args(&input, &data_dir));

        let round_trip = |server: &Server, req: &str| {
            let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream.try_clone().unwrap();
            w.write_all(req.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };

        let (server, preamble) = start_server(&opts).unwrap();
        assert!(preamble.contains("durable: fresh lineage"), "{preamble}");
        assert!(preamble.contains("single-threaded"), "{preamble}");
        assert!(preamble.contains("warm start"), "{preamble}");
        let q_before = round_trip(&server, r#"{"cmd":"query","node":0}"#);
        assert!(q_before.contains("\"ok\":true"), "{q_before}");
        let stats = round_trip(&server, r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"durability\":{"), "{stats}");
        assert!(stats.contains("\"recovered_from\":null"), "{stats}");
        round_trip(&server, r#"{"cmd":"shutdown"}"#);
        server.join();

        // Same options, same directory: the lineage is recovered, the
        // warm start skipped, and reads come back byte-identical.
        let (server, preamble) = start_server(&opts).unwrap();
        assert!(
            preamble.contains("durable: recovered from snapshot seq"),
            "{preamble}"
        );
        assert!(preamble.contains("warm start skipped"), "{preamble}");
        let q_after = round_trip(&server, r#"{"cmd":"query","node":0}"#);
        assert_eq!(q_before, q_after, "restart must be bit-exact");
        let stats = round_trip(&server, r#"{"cmd":"stats"}"#);
        assert!(
            stats.contains("\"recovered_from\":\"snapshot seq"),
            "{stats}"
        );
        round_trip(&server, r#"{"cmd":"shutdown"}"#);
        server.join();

        // The inspection command reports the same directory's health.
        let report = recover(&Opts::parse(&[
            "--data-dir".into(),
            data_dir.display().to_string(),
        ]))
        .unwrap();
        assert!(report.contains("durable lineage at"), "{report}");
        assert!(report.contains("snapshot seq="), "{report}");
        assert!(report.contains("clean tail"), "{report}");
        assert!(report.contains("restart replays 0 event(s)"), "{report}");

        let err = recover(&Opts::parse(&[
            "--data-dir".into(),
            "/nonexistent/xyz".into(),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let _ = std::fs::remove_dir_all(&data_dir);
    }

    #[test]
    fn serve_command_sharded_durable_restart() {
        use std::io::{BufRead, BufReader, Write};
        let input = write_fixture("glodyne_cli_serve_shdur");
        let data_dir = std::env::temp_dir().join(format!(
            "glodyne_cli_shdur_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        let mut args = durable_args(&input, &data_dir);
        args.extend(["--shards".into(), "2".into()]);
        let opts = Opts::parse(&args);

        let round_trip = |server: &Server, req: &str| {
            let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream.try_clone().unwrap();
            w.write_all(req.as_bytes()).unwrap();
            w.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };

        let (server, preamble) = start_server(&opts).unwrap();
        assert!(
            preamble.contains("durable: fresh sharded lineage"),
            "{preamble}"
        );
        assert!(preamble.contains("warm start"), "{preamble}");
        let q_before = round_trip(&server, r#"{"cmd":"query","node":0}"#);
        assert!(q_before.contains("\"ok\":true"), "{q_before}");
        round_trip(&server, r#"{"cmd":"shutdown"}"#);
        server.join();

        let (server, preamble) = start_server(&opts).unwrap();
        assert!(preamble.contains("durable: recovered from"), "{preamble}");
        assert!(preamble.contains("warm start skipped"), "{preamble}");
        let q_after = round_trip(&server, r#"{"cmd":"query","node":0}"#);
        assert_eq!(q_before, q_after, "sharded restart must be bit-exact");
        round_trip(&server, r#"{"cmd":"shutdown"}"#);
        server.join();

        let report = recover(&Opts::parse(&[
            "--data-dir".into(),
            data_dir.display().to_string(),
        ]))
        .unwrap();
        assert!(report.contains("sharded durable lineage"), "{report}");
        assert!(report.contains("[router]"), "{report}");
        assert!(report.contains("[shard-0]"), "{report}");
        assert!(report.contains("[shard-1]"), "{report}");
        let _ = std::fs::remove_dir_all(&data_dir);
    }

    #[test]
    fn parse_durable_flags() {
        assert!(parse_durable(&Opts::parse(&[])).unwrap().is_none());
        let opts = Opts::parse(&[
            "--data-dir".into(),
            "/tmp/x".into(),
            "--fsync".into(),
            "every:8".into(),
            "--snapshot-every".into(),
            "2".into(),
        ]);
        let (dir, cfg) = parse_durable(&opts).unwrap().unwrap();
        assert_eq!(dir, PathBuf::from("/tmp/x"));
        assert_eq!(cfg.fsync, FsyncPolicy::EveryNEvents(8));
        assert_eq!(cfg.snapshot_every, 2);

        let bad = Opts::parse(&[
            "--data-dir".into(),
            "/tmp/x".into(),
            "--fsync".into(),
            "sometimes".into(),
        ]);
        let err = parse_durable(&bad).unwrap_err();
        assert!(err.to_string().contains("--fsync"), "{err}");
    }

    #[test]
    fn invalid_config_surfaces_cleanly() {
        let input = write_fixture("glodyne_cli_cfg");
        let opts = Opts::parse(&[
            "--input".into(),
            input.display().to_string(),
            "--alpha".into(),
            "7.0".into(),
        ]);
        let err = embed(&opts).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn partition_command_output() {
        let input = write_fixture("glodyne_cli_part");
        let opts = Opts::parse(&[
            "--input".into(),
            input.display().to_string(),
            "--k".into(),
            "4".into(),
        ]);
        let out = partition_cmd(&opts).unwrap();
        assert!(out.contains("4 parts"));
        assert!(out.lines().count() > 20);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let opts = Opts::parse(&["--input".into(), "/nonexistent/xyz.txt".into()]);
        let err = embed(&opts).unwrap_err();
        assert!(err.to_string().contains("cannot open"));
        assert!(matches!(err, CliError::Io { .. }));
    }

    #[test]
    fn parse_telemetry_flags() {
        // Off by default.
        let (on, probe, slow) = parse_telemetry(&Opts::parse(&[])).unwrap();
        assert!(!on && probe.is_none() && slow.is_none());
        // --telemetry alone uses probe defaults.
        let (on, probe, _) = parse_telemetry(&Opts::parse(&["--telemetry".into()])).unwrap();
        assert!(on);
        assert_eq!(probe.unwrap(), ProbeSettings::default());
        // Any probe flag implies --telemetry.
        let (on, probe, slow) = parse_telemetry(&Opts::parse(&[
            "--probe-every".into(),
            "250".into(),
            "--probe-k".into(),
            "5".into(),
            "--slow-us".into(),
            "500".into(),
        ]))
        .unwrap();
        assert!(on);
        let probe = probe.unwrap();
        assert_eq!(probe.period_ms, 250);
        assert_eq!(probe.k, 5);
        assert_eq!(slow, Some(500));
        // Degenerate probe parameters are config errors.
        let err = parse_telemetry(&Opts::parse(&["--probe-k".into(), "0".into()])).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
    }

    #[test]
    fn serve_command_with_telemetry_and_stats_watch() {
        use std::io::{BufRead, BufReader, Write};
        let input = write_fixture("glodyne_cli_serve_telemetry");
        let opts = Opts::parse(&[
            "--bind".into(),
            "127.0.0.1:0".into(),
            "--input".into(),
            input.display().to_string(),
            "--policy".into(),
            "manual".into(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
            "--ann".into(),
            "--cells".into(),
            "4".into(),
            "--nprobe".into(),
            "4".into(),
            "--telemetry".into(),
            "--probe-every".into(),
            "10".into(),
            "--probe-k".into(),
            "3".into(),
        ]);
        let (server, preamble) = start_server(&opts).unwrap();
        assert!(
            preamble.contains("telemetry: metrics registry on"),
            "{preamble}"
        );
        assert!(
            preamble.contains("quality probe every 10ms (recall@3"),
            "{preamble}"
        );
        let addr = server.local_addr().to_string();

        // The one-shot pretty-printer sees the live telemetry section.
        let rendered = stats_cmd(&Opts::parse(&["--addr".into(), addr.clone()])).unwrap();
        assert!(rendered.contains("telemetry:"), "{rendered}");
        assert!(rendered.contains("wire latency (us):"), "{rendered}");
        assert!(rendered.contains("ann: cells=4"), "{rendered}");

        // The metrics op scrapes Prometheus text over the same wire
        // (pipeline a stats request behind it as the terminator).
        let stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream.try_clone().unwrap();
        w.write_all(b"{\"cmd\":\"metrics\"}\n{\"cmd\":\"stats\"}\n")
            .unwrap();
        let mut text = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.starts_with(r#"{"ok":true,"cmd":"stats""#) {
                break;
            }
            text.push_str(&line);
        }
        assert!(text.contains("# TYPE glodyne_wire_latency_us"), "{text}");
        assert!(text.contains("glodyne_probe_recall_at_k"), "{text}");

        // --watch keeps printing frames and exits cleanly when the
        // server goes away.
        let watcher = std::thread::spawn(move || {
            stats_cmd(&Opts::parse(&[
                "--addr".into(),
                addr,
                "--watch".into(),
                "--interval-ms".into(),
                "20".into(),
            ]))
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        w.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        let mut bye = String::new();
        reader.read_line(&mut bye).unwrap();
        server.join();
        let report = watcher.join().unwrap().unwrap();
        assert!(report.contains("went away"), "{report}");

        // Against a dead address, the first fetch is a clean error.
        let err = stats_cmd(&Opts::parse(&["--addr".into(), "127.0.0.1:1".into()])).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }), "{err}");
    }

    #[test]
    fn render_stats_handles_telemetry_off() {
        let stats = glodyne_serve::json::parse(
            r#"{"ok":true,"cmd":"stats","epoch":2,"nodes":9,"dim":8,
                "queue_depth":0,"queue_capacity":64,"queue_high_water":3,
                "events_accepted":17,"ann":null,"shards":null,"telemetry":null}"#,
        )
        .unwrap();
        let out = render_stats(&stats);
        assert!(out.contains("epoch 2  nodes 9  dim 8"), "{out}");
        assert!(out.contains("high-water 3"), "{out}");
        assert!(out.contains("telemetry: off"), "{out}");
        assert!(!out.contains("ann:"), "{out}");
    }
}
