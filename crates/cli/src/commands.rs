//! Subcommand implementations.

use crate::opts::Opts;
use crate::CliError;
use glodyne::{GloDyNE, GloDyNEConfig};
use glodyne_embed::persist;
use glodyne_embed::traits::DynamicEmbedder;
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_graph::id::TimedEdge;
use glodyne_graph::io::read_edge_stream;
use glodyne_graph::DynamicNetwork;
use glodyne_partition::{partition, PartitionConfig};
use glodyne_tasks::gr::mean_precision_at_k;
use glodyne_tasks::lp::{build_test_set, link_prediction_auc};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Load an edge stream file.
fn load_stream(path: &str) -> Result<Vec<TimedEdge>, CliError> {
    let file = File::open(path).map_err(|e| CliError(format!("cannot open {path}: {e}")))?;
    let stream = read_edge_stream(BufReader::new(file))?;
    if stream.is_empty() {
        return Err(CliError(format!("{path}: no edges parsed")));
    }
    Ok(stream)
}

/// Cut a stream into `n` snapshots at equal-count timestamp quantiles
/// (§5.1.1 uses calendar days; without calendar semantics, quantiles
/// give evenly-filled snapshots).
pub fn cut_snapshots(stream: Vec<TimedEdge>, n: usize) -> DynamicNetwork {
    let mut times: Vec<u64> = stream.iter().map(|e| e.time).collect();
    times.sort_unstable();
    let cutoffs: Vec<u64> = (1..=n)
        .map(|i| {
            let idx = (i * times.len()) / n;
            times[idx.saturating_sub(1).min(times.len() - 1)]
        })
        .collect();
    // Cutoffs must be non-decreasing (sorted quantiles are).
    DynamicNetwork::from_edge_stream(stream, &cutoffs)
}

fn glodyne_config(opts: &Opts) -> GloDyNEConfig {
    GloDyNEConfig {
        alpha: opts.get("alpha", 0.1),
        epsilon: opts.get("epsilon", 0.1),
        walk: WalkConfig {
            walks_per_node: opts.get("walks", 10),
            walk_length: opts.get("walk-length", 80),
            seed: opts.get("seed", 0u64),
        },
        sgns: SgnsConfig {
            dim: opts.get("dim", 128),
            window: opts.get("window", 10),
            negatives: opts.get("negatives", 5),
            epochs: opts.get("epochs", 2),
            seed: opts.get("seed", 0u64),
            ..Default::default()
        },
        strategy: glodyne::Strategy::S4,
        seed: opts.get("seed", 0u64),
    }
}

/// `glodyne embed`: run GloDyNE over the stream, write one TSV per step.
pub fn embed(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("input")?;
    let n_snapshots = opts.get("snapshots", 10usize);
    let out_dir = opts.get_str("out-dir", ".");
    let stream = load_stream(input)?;
    let net = cut_snapshots(stream, n_snapshots);

    std::fs::create_dir_all(out_dir)?;
    let mut model = GloDyNE::new(glodyne_config(opts));
    let mut prev = None;
    let mut report = String::new();
    for (t, snap) in net.snapshots().iter().enumerate() {
        model.advance(prev, snap);
        let emb = model.embedding();
        let path = Path::new(out_dir).join(format!("embedding_t{t:03}.tsv"));
        let mut w = BufWriter::new(File::create(&path)?);
        persist::write_tsv(&mut w, &emb)?;
        report.push_str(&format!(
            "t={t}: |V|={} |E|={} selected={} -> {}\n",
            snap.num_nodes(),
            snap.num_edges(),
            model.last_selected_count(),
            path.display()
        ));
        prev = Some(snap);
    }
    Ok(report)
}

/// `glodyne partition`: balanced k-way partition of the final snapshot.
pub fn partition_cmd(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("input")?;
    let stream = load_stream(input)?;
    let net = cut_snapshots(stream, 1);
    let g = net.snapshot(0);
    let cfg = PartitionConfig {
        k: opts.get("k", 8usize),
        epsilon: opts.get("epsilon", 0.1),
        seed: opts.get("seed", 0u64),
        ..Default::default()
    };
    let p = partition(g, &cfg);
    let mut out = String::with_capacity(g.num_nodes() * 8);
    out.push_str(&format!(
        "# {} nodes, {} parts, edge cut {}, imbalance {:.3}\n",
        g.num_nodes(),
        p.k,
        p.edge_cut(g),
        p.imbalance(g.num_nodes())
    ));
    for l in 0..g.num_nodes() {
        out.push_str(&format!("{} {}\n", g.node_id(l).0, p.assignment[l]));
    }
    Ok(out)
}

/// `glodyne evaluate`: GR MeanP@k and LP AUC of GloDyNE on the stream.
pub fn evaluate(opts: &Opts) -> Result<String, CliError> {
    let input = opts.require("input")?;
    let n_snapshots = opts.get("snapshots", 10usize);
    let stream = load_stream(input)?;
    let net = cut_snapshots(stream, n_snapshots);
    let snaps = net.snapshots();

    let mut model = GloDyNE::new(glodyne_config(opts));
    let mut prev = None;
    let mut embeddings = Vec::new();
    for snap in snaps {
        model.advance(prev, snap);
        embeddings.push(model.embedding());
        prev = Some(snap);
    }

    let ks = [1usize, 5, 10, 20, 40];
    let mut gr_acc = vec![0.0; ks.len()];
    for (e, s) in embeddings.iter().zip(snaps) {
        for (a, v) in gr_acc.iter_mut().zip(mean_precision_at_k(e, s, &ks)) {
            *a += v;
        }
    }
    gr_acc.iter_mut().for_each(|a| *a /= snaps.len() as f64);

    let mut auc_acc = 0.0;
    let mut auc_n = 0usize;
    for t in 0..snaps.len().saturating_sub(1) {
        let test = build_test_set(&snaps[t], &snaps[t + 1], opts.get("seed", 0u64) + t as u64);
        if !test.is_empty() {
            auc_acc += link_prediction_auc(&embeddings[t], &test);
            auc_n += 1;
        }
    }

    let mut out = String::new();
    out.push_str("graph reconstruction (mean over time steps):\n");
    for (k, v) in ks.iter().zip(&gr_acc) {
        out.push_str(&format!("  MeanP@{k:<3} = {:.4}\n", v));
    }
    if auc_n > 0 {
        out.push_str(&format!(
            "link prediction AUC (mean over transitions) = {:.4}\n",
            auc_acc / auc_n as f64
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::NodeId;

    fn stream_fixture() -> Vec<TimedEdge> {
        // Growing triangle fan over 30 time units.
        let mut stream = Vec::new();
        for t in 0..30u64 {
            let v = t as u32;
            stream.push(TimedEdge::new(NodeId(v), NodeId(v + 1), t));
            stream.push(TimedEdge::new(NodeId(v), NodeId(v + 2), t));
        }
        stream
    }

    #[test]
    fn cut_snapshots_quantiles() {
        let net = cut_snapshots(stream_fixture(), 3);
        assert_eq!(net.len(), 3);
        // Monotone growth across snapshots.
        assert!(net.snapshot(0).num_edges() <= net.snapshot(1).num_edges());
        assert!(net.snapshot(1).num_edges() <= net.snapshot(2).num_edges());
        // Final snapshot holds the full (LCC of the) stream.
        assert_eq!(net.snapshot(2).num_edges(), 60);
    }

    #[test]
    fn end_to_end_embed_and_evaluate() {
        let dir = std::env::temp_dir().join("glodyne_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("edges.txt");
        {
            let mut f = std::fs::File::create(&input).unwrap();
            glodyne_graph::io::write_edge_stream(&mut f, &stream_fixture()).unwrap();
        }
        let out_dir = dir.join("emb");
        let opts = Opts::parse(&[
            "--input".into(),
            input.display().to_string(),
            "--snapshots".into(),
            "3".into(),
            "--out-dir".into(),
            out_dir.display().to_string(),
            "--dim".into(),
            "8".into(),
            "--walks".into(),
            "2".into(),
            "--walk-length".into(),
            "8".into(),
            "--epochs".into(),
            "1".into(),
        ]);
        let report = embed(&opts).unwrap();
        assert!(report.contains("t=2"));
        // Written TSVs parse back.
        let f = std::fs::File::open(out_dir.join("embedding_t002.tsv")).unwrap();
        let emb = persist::read_tsv(std::io::BufReader::new(f)).unwrap();
        assert!(emb.len() > 10);
        assert_eq!(emb.dim(), 8);

        let eval = evaluate(&opts).unwrap();
        assert!(eval.contains("MeanP@1"));
    }

    #[test]
    fn partition_command_output() {
        let dir = std::env::temp_dir().join("glodyne_cli_part");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("edges.txt");
        {
            let mut f = std::fs::File::create(&input).unwrap();
            glodyne_graph::io::write_edge_stream(&mut f, &stream_fixture()).unwrap();
        }
        let opts = Opts::parse(&[
            "--input".into(),
            input.display().to_string(),
            "--k".into(),
            "4".into(),
        ]);
        let out = partition_cmd(&opts).unwrap();
        assert!(out.contains("4 parts"));
        assert!(out.lines().count() > 20);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let opts = Opts::parse(&["--input".into(), "/nonexistent/xyz.txt".into()]);
        let err = embed(&opts).unwrap_err();
        assert!(err.to_string().contains("cannot open"));
    }
}
