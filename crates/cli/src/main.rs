//! `glodyne` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match glodyne_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
