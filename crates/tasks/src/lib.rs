//! Downstream evaluation tasks (§5.2): the embedding-quality yardsticks
//! applied identically to every method.
//!
//! - [`gr`] — Graph Reconstruction, MeanP@k (§5.2.1; Table 1, Figures
//!   3/4, Table 5, Figure 6).
//! - [`lp`] — dynamic Link Prediction, AUC (§5.2.2; Table 2, Figure 2).
//! - [`nc`] — Node Classification, Micro/Macro-F1 (§5.2.3; Table 3).
//! - [`stability`] — embedding-drift metrics behind the Figure 5
//!   visualisation (absolute/relative position preservation).
//! - [`stats`] — mean/std aggregation used by every table ("mean with
//!   its standard deviation over 20 runs").

pub mod gr;
pub mod lp;
pub mod nc;
pub mod stability;
pub mod stats;
