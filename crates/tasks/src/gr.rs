//! Graph Reconstruction (§5.2.1).
//!
//! `P@k(v) = |Q(v)@k ∩ N(v)| / min(k, |N(v)|)` where `Q(v)@k` is the
//! top-k cosine-similar nodes in the embedding space, and
//! `MeanP@k = (Σ_v P@k(v)) / |V|` over all nodes of the current
//! snapshot. This is the task that directly measures *global topology
//! preservation*.

use glodyne_embed::Embedding;
use glodyne_graph::Snapshot;
use rayon::prelude::*;

/// Compute MeanP@k for several `k`s at once (sharing the similarity
/// computation). Nodes without an embedding score 0 at every `k` —
/// a method that failed to embed part of the snapshot is penalised, not
/// skipped. Isolated nodes (no ground-truth neighbours) are excluded as
/// in the paper (their `P@k` is undefined).
pub fn mean_precision_at_k(emb: &Embedding, snapshot: &Snapshot, ks: &[usize]) -> Vec<f64> {
    let n = snapshot.num_nodes();
    if n == 0 || ks.is_empty() {
        return vec![0.0; ks.len()];
    }
    let max_k = *ks.iter().max().unwrap();
    let dim = emb.dim();

    // Dense, L2-normalised matrix in snapshot-local order (zero rows for
    // missing embeddings -> cosine 0 with everything).
    let mut matrix = vec![0.0f32; n * dim];
    let mut has_emb = vec![false; n];
    for l in 0..n {
        if let Some(v) = emb.get(snapshot.node_id(l)) {
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for (j, &x) in v.iter().enumerate() {
                    matrix[l * dim + j] = x / norm;
                }
                has_emb[l] = true;
            }
        }
    }

    let per_node: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .filter(|&q| snapshot.degree(q) > 0)
        .map(|q| {
            if !has_emb[q] {
                return vec![0.0; ks.len()];
            }
            // Similarities of q to all other nodes.
            let qrow = &matrix[q * dim..(q + 1) * dim];
            let mut sims: Vec<(f32, u32)> = (0..n)
                .filter(|&o| o != q)
                .map(|o| {
                    let orow = &matrix[o * dim..(o + 1) * dim];
                    let s: f32 = qrow.iter().zip(orow).map(|(a, b)| a * b).sum();
                    (s, o as u32)
                })
                .collect();
            // Partial top-max_k selection, then sort the head descending.
            let top = max_k.min(sims.len());
            sims.select_nth_unstable_by(top.saturating_sub(1), |a, b| {
                b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1))
            });
            sims.truncate(top);
            sims.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));

            let neighbors = snapshot.neighbors(q);
            ks.iter()
                .map(|&k| {
                    let kk = k.min(sims.len());
                    let hits = sims[..kk]
                        .iter()
                        .filter(|&&(_, o)| neighbors.binary_search(&o).is_ok())
                        .count();
                    hits as f64 / k.min(neighbors.len()).max(1) as f64
                })
                .collect()
        })
        .collect();

    let queried = per_node.len().max(1);
    let mut out = vec![0.0; ks.len()];
    for row in &per_node {
        for (o, v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    for o in out.iter_mut() {
        *o /= queried as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};

    fn snap(edges: &[(u32, u32)]) -> Snapshot {
        let es: Vec<Edge> = edges
            .iter()
            .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect();
        Snapshot::from_edges(&es, &[])
    }

    /// Embedding where each node's vector equals its adjacency row —
    /// perfect reconstruction oracle for small graphs.
    fn adjacency_embedding(g: &Snapshot) -> Embedding {
        let n = g.num_nodes();
        let mut e = Embedding::new(n);
        for l in 0..n {
            let mut v = vec![0.0f32; n];
            v[l] = 0.5; // self-similarity anchor
            for &u in g.neighbors(l) {
                v[u as usize] = 1.0;
            }
            e.set(g.node_id(l), &v);
        }
        e
    }

    #[test]
    fn perfect_embedding_on_triangle() {
        let g = snap(&[(0, 1), (1, 2), (0, 2)]);
        let e = adjacency_embedding(&g);
        let scores = mean_precision_at_k(&e, &g, &[1, 2]);
        assert!(
            scores[1] > 0.99,
            "P@2 on a triangle should be 1, got {scores:?}"
        );
    }

    #[test]
    fn random_embedding_scores_low_on_sparse_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        // 40-node ring: each node has 2 neighbours among 39 candidates.
        let edges: Vec<(u32, u32)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        let g = snap(&edges);
        let mut e = Embedding::new(16);
        for l in 0..g.num_nodes() {
            let v: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            e.set(g.node_id(l), &v);
        }
        let s = mean_precision_at_k(&e, &g, &[1]);
        assert!(s[0] < 0.3, "random should score low, got {}", s[0]);
    }

    #[test]
    fn missing_embeddings_penalised() {
        let g = snap(&[(0, 1), (1, 2), (0, 2)]);
        let full = adjacency_embedding(&g);
        let mut partial = Embedding::new(g.num_nodes());
        // only node 0 embedded
        partial.set(NodeId(0), full.get(NodeId(0)).unwrap());
        let s_full = mean_precision_at_k(&full, &g, &[2]);
        let s_partial = mean_precision_at_k(&partial, &g, &[2]);
        assert!(s_partial[0] < s_full[0]);
    }

    #[test]
    fn min_k_degree_denominator() {
        // star: center has 4 neighbours, leaves have 1.
        // With k=4 a perfect embedding still gets P@4(leaf)=1 because the
        // denominator is min(k, |N|) = 1.
        let g = snap(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let e = adjacency_embedding(&g);
        let s = mean_precision_at_k(&e, &g, &[4]);
        assert!(s[0] > 0.95, "P@4 {s:?}");
    }

    #[test]
    fn empty_inputs() {
        let g = Snapshot::empty();
        let e = Embedding::new(4);
        assert_eq!(mean_precision_at_k(&e, &g, &[1, 5]), vec![0.0, 0.0]);
    }
}
