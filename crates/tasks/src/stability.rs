//! Embedding-drift metrics behind the Figure 5 visualisation.
//!
//! Figure 5 shows that "GloDyNE keeps not only the relative position but
//! also the absolute position of node embeddings between two consecutive
//! time steps, whereas SGNS-retrain cannot keep the absolute position
//! (notice the rotation of the 'v' shape)". We quantify that:
//!
//! - [`absolute_drift`] — mean Euclidean distance between a common
//!   node's vectors at consecutive steps (absolute-position change);
//! - [`rotation_angle_2d`] — the optimal rigid-rotation angle aligning
//!   two 2-D projections (the "rotation of the 'v' shape");
//! - [`project_2d`] — the PCA 128→2 projection used by the figure.

use glodyne_embed::Embedding;
use glodyne_graph::NodeId;
use glodyne_linalg::{pca, Matrix};

/// Mean L2 distance between the embeddings of nodes present in both
/// steps. Returns `None` when there is no common node.
pub fn absolute_drift(prev: &Embedding, curr: &Embedding) -> Option<f64> {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (id, v_prev) in prev.iter() {
        if let Some(v_curr) = curr.get(id) {
            let d: f64 = v_prev
                .iter()
                .zip(v_curr)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            total += d;
            count += 1;
        }
    }
    (count > 0).then(|| total / count as f64)
}

/// PCA-project an embedding to 2-D, returning `(ids, n × 2 matrix)` in a
/// deterministic id order.
pub fn project_2d(emb: &Embedding, seed: u64) -> (Vec<NodeId>, Matrix) {
    let mut ids: Vec<NodeId> = emb.ids().to_vec();
    ids.sort_unstable();
    let dim = emb.dim();
    let mut data = Vec::with_capacity(ids.len() * dim);
    for id in &ids {
        data.extend(emb.get(*id).unwrap().iter().map(|&x| x as f64));
    }
    let matrix = Matrix::from_vec(ids.len(), dim, data);
    let fitted = pca::fit(&matrix, 2, seed);
    (ids, fitted.transform(&matrix))
}

/// Optimal rigid rotation angle (radians, in `[0, π]`) aligning two 2-D
/// point clouds over their common ids — the 2-D orthogonal Procrustes
/// solution `θ* = atan2(Σ(x×y), Σ(x·y))` after centering.
pub fn rotation_angle_2d(
    ids_a: &[NodeId],
    a: &Matrix,
    ids_b: &[NodeId],
    b: &Matrix,
) -> Option<f64> {
    use std::collections::HashMap;
    let index_b: HashMap<NodeId, usize> =
        ids_b.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let common: Vec<(usize, usize)> = ids_a
        .iter()
        .enumerate()
        .filter_map(|(i, id)| index_b.get(id).map(|&j| (i, j)))
        .collect();
    if common.len() < 2 {
        return None;
    }
    // Center both clouds on the common subset.
    let mut ca = [0.0f64; 2];
    let mut cb = [0.0f64; 2];
    for &(i, j) in &common {
        ca[0] += a[(i, 0)];
        ca[1] += a[(i, 1)];
        cb[0] += b[(j, 0)];
        cb[1] += b[(j, 1)];
    }
    let n = common.len() as f64;
    ca[0] /= n;
    ca[1] /= n;
    cb[0] /= n;
    cb[1] /= n;
    let mut dot = 0.0f64;
    let mut cross = 0.0f64;
    for &(i, j) in &common {
        let ax = a[(i, 0)] - ca[0];
        let ay = a[(i, 1)] - ca[1];
        let bx = b[(j, 0)] - cb[0];
        let by = b[(j, 1)] - cb[1];
        dot += ax * bx + ay * by;
        cross += ax * by - ay * bx;
    }
    Some(cross.atan2(dot).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(points: &[(f64, f64)]) -> (Vec<NodeId>, Matrix) {
        let ids: Vec<NodeId> = (0..points.len() as u32).map(NodeId).collect();
        let mut data = Vec::new();
        for &(x, y) in points {
            data.push(x);
            data.push(y);
        }
        (ids, Matrix::from_vec(points.len(), 2, data))
    }

    #[test]
    fn zero_drift_for_identical_embeddings() {
        let mut e = Embedding::new(3);
        e.set(NodeId(0), &[1.0, 2.0, 3.0]);
        e.set(NodeId(1), &[-1.0, 0.0, 1.0]);
        assert_eq!(absolute_drift(&e, &e), Some(0.0));
    }

    #[test]
    fn drift_measures_displacement() {
        let mut a = Embedding::new(2);
        let mut b = Embedding::new(2);
        a.set(NodeId(0), &[0.0, 0.0]);
        b.set(NodeId(0), &[3.0, 4.0]);
        assert!((absolute_drift(&a, &b).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn drift_none_without_common_nodes() {
        let mut a = Embedding::new(1);
        let mut b = Embedding::new(1);
        a.set(NodeId(0), &[1.0]);
        b.set(NodeId(1), &[1.0]);
        assert_eq!(absolute_drift(&a, &b), None);
    }

    #[test]
    fn rotation_angle_detects_quarter_turn() {
        let pts = [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0), (2.0, 1.0)];
        let rotated: Vec<(f64, f64)> = pts.iter().map(|&(x, y)| (-y, x)).collect();
        let (ids_a, a) = cloud(&pts);
        let (ids_b, b) = cloud(&rotated);
        let theta = rotation_angle_2d(&ids_a, &a, &ids_b, &b).unwrap();
        assert!(
            (theta - std::f64::consts::FRAC_PI_2).abs() < 1e-9,
            "theta {theta}"
        );
    }

    #[test]
    fn rotation_angle_zero_for_identity_and_translation() {
        let pts = [(1.0, 0.5), (0.3, -1.0), (-0.7, 0.2), (0.0, 0.9)];
        let shifted: Vec<(f64, f64)> = pts.iter().map(|&(x, y)| (x + 5.0, y - 2.0)).collect();
        let (ids_a, a) = cloud(&pts);
        let (ids_b, b) = cloud(&shifted);
        let theta = rotation_angle_2d(&ids_a, &a, &ids_b, &b).unwrap();
        assert!(theta.abs() < 1e-9, "translation must not read as rotation");
    }

    #[test]
    fn project_2d_shapes() {
        let mut e = Embedding::new(8);
        for v in 0..10u32 {
            let vec: Vec<f32> = (0..8).map(|k| ((v + k) as f32).sin()).collect();
            e.set(NodeId(v), &vec);
        }
        let (ids, proj) = project_2d(&e, 0);
        assert_eq!(ids.len(), 10);
        assert_eq!(proj.rows(), 10);
        assert_eq!(proj.cols(), 2);
    }
}
