//! Dynamic Link Prediction (§5.2.2).
//!
//! "The (dynamic) LP task aims to predict future edges at time step t+1
//! using the obtained node embeddings at t. The testing edges include
//! both added and deleted edges from t to t+1, plus other edges randomly
//! sampled from the snapshot at t+1 for balancing existent edges (or
//! positive samples) and non-existent edges (or negative samples). The
//! LP task is then evaluated by AUC based on the cosine similarity
//! between node embeddings."

use glodyne_embed::Embedding;
use glodyne_graph::{NodeId, Snapshot, SnapshotDiff};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A labelled test pair for link prediction.
#[derive(Debug, Clone, Copy)]
pub struct TestPair {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// True iff the edge exists in `G^{t+1}`.
    pub positive: bool,
}

/// Build the paper's LP test set from consecutive snapshots `G^t` and
/// `G^{t+1}`:
/// - added edges (in `t+1`, not `t`) → positives;
/// - deleted edges (in `t`, not `t+1`) → negatives (they no longer
///   exist at `t+1`);
/// - random existing edges of `t+1` / random non-edges top up whichever
///   side is smaller until balanced.
///
/// Only pairs whose **both endpoints exist at `t`** are included: no
/// method can score a node it has never seen (its embedding at `t` does
/// not exist), so pairs touching brand-new nodes are unscorable for
/// every method and would only inject label-correlated zeros.
pub fn build_test_set(curr: &Snapshot, next: &Snapshot, seed: u64) -> Vec<TestPair> {
    let diff = SnapshotDiff::compute(curr, next);
    let scorable = |u: NodeId, v: NodeId| curr.local_of(u).is_some() && curr.local_of(v).is_some();
    let mut pairs: Vec<TestPair> = Vec::new();
    for e in &diff.added {
        if scorable(e.u, e.v) {
            pairs.push(TestPair {
                u: e.u,
                v: e.v,
                positive: true,
            });
        }
    }
    for e in &diff.removed {
        if scorable(e.u, e.v) {
            pairs.push(TestPair {
                u: e.u,
                v: e.v,
                positive: false,
            });
        }
    }
    let mut pos = pairs.iter().filter(|p| p.positive).count();
    let mut neg = pairs.len() - pos;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Candidate universe: nodes alive at both t and t+1.
    let ids: Vec<NodeId> = next
        .node_ids()
        .iter()
        .copied()
        .filter(|&id| curr.local_of(id).is_some())
        .collect();
    if ids.len() < 2 {
        return pairs;
    }
    let edges: Vec<_> = next.edges().filter(|e| scorable(e.u, e.v)).collect();
    // Citation-style networks grow only by new nodes: every changed
    // edge touches an unscorable newcomer, leaving no seed pairs. Fall
    // back to the balanced existent-vs-non-existent protocol over `t+1`
    // (the "other edges randomly sampled from the snapshot at t+1" part
    // of the paper's recipe carries the whole test set then).
    if pairs.is_empty() && !edges.is_empty() {
        let target = 20.min(edges.len());
        for _ in 0..target {
            let e = edges[rng.gen_range(0..edges.len())];
            pairs.push(TestPair {
                u: e.u,
                v: e.v,
                positive: true,
            });
            pos += 1;
        }
    }
    let mut guard = 0;
    while pos < neg && !edges.is_empty() && guard < 100_000 {
        let e = edges[rng.gen_range(0..edges.len())];
        pairs.push(TestPair {
            u: e.u,
            v: e.v,
            positive: true,
        });
        pos += 1;
        guard += 1;
    }
    while neg < pos && guard < 200_000 {
        guard += 1;
        let a = ids[rng.gen_range(0..ids.len())];
        let b = ids[rng.gen_range(0..ids.len())];
        if a != b && !next.has_edge_ids(a, b) {
            pairs.push(TestPair {
                u: a,
                v: b,
                positive: false,
            });
            neg += 1;
        }
    }
    pairs
}

/// Area under the ROC curve of `scores` against boolean labels, via the
/// Mann–Whitney rank statistic with midrank tie handling.
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    // midranks
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(r, _)| r)
        .sum();
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Run the LP task: score each test pair with embedding cosine
/// similarity (missing embeddings score 0 — chance level) and return
/// the AUC.
pub fn link_prediction_auc(emb: &Embedding, test: &[TestPair]) -> f64 {
    let scores: Vec<f64> = test
        .iter()
        .map(|p| emb.cosine(p.u, p.v).unwrap_or(0.0) as f64)
        .collect();
    let labels: Vec<bool> = test.iter().map(|p| p.positive).collect();
    auc(&scores, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::Edge;

    fn snap(edges: &[(u32, u32)]) -> Snapshot {
        let es: Vec<Edge> = edges
            .iter()
            .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect();
        Snapshot::from_edges(&es, &[])
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = [false, false, true, true];
        assert!((auc(&scores, &inverted)).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_as_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_labels() {
        assert_eq!(auc(&[0.1, 0.2], &[true, true]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn test_set_is_balanced() {
        let curr = snap(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let next = snap(&[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let pairs = build_test_set(&curr, &next, 1);
        let pos = pairs.iter().filter(|p| p.positive).count();
        let neg = pairs.len() - pos;
        assert_eq!(pos, neg, "balanced: {pos} vs {neg}");
        assert!(pos >= 2, "the two added edges are positives");
    }

    #[test]
    fn deleted_edges_are_negatives() {
        let curr = snap(&[(0, 1), (1, 2), (0, 2)]);
        let next = snap(&[(0, 1), (1, 2)]);
        let pairs = build_test_set(&curr, &next, 2);
        let del = pairs
            .iter()
            .find(|p| (p.u, p.v) == (NodeId(0), NodeId(2)))
            .unwrap();
        assert!(!del.positive);
    }

    #[test]
    fn new_node_pairs_are_excluded() {
        // next introduces node 9 with two edges; no pair touching 9 may
        // appear in the test set because it cannot be scored at t.
        let curr = snap(&[(0, 1), (1, 2)]);
        let next = snap(&[(0, 1), (1, 2), (9, 0), (9, 2)]);
        let pairs = build_test_set(&curr, &next, 7);
        for p in &pairs {
            assert_ne!(p.u, NodeId(9));
            assert_ne!(p.v, NodeId(9));
        }
    }

    #[test]
    fn good_embedding_beats_chance() {
        // 2 cliques; next step adds intra-clique edges. An embedding
        // separating the cliques should predict them well.
        let curr = snap(&[(0, 1), (1, 2), (5, 6), (6, 7), (2, 5)]);
        let next = snap(&[(0, 1), (1, 2), (5, 6), (6, 7), (2, 5), (0, 2), (5, 7)]);
        let mut e = Embedding::new(2);
        for id in 0..3u32 {
            e.set(NodeId(id), &[1.0, 0.0]);
        }
        for id in 5..8u32 {
            e.set(NodeId(id), &[0.0, 1.0]);
        }
        let pairs = build_test_set(&curr, &next, 3);
        let score = link_prediction_auc(&e, &pairs);
        assert!(score > 0.6, "AUC {score}");
    }
}
