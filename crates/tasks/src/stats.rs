//! Mean/std aggregation and the two-sample t-test used by the paper's
//! tables ("Two-tailed and two-sample Student's T-Test is applied with
//! the null hypothesis that there is no statistically significant
//! difference of the mean over 20 runs between the two best results").

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator; 0 for <2 samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Welch's two-sample t statistic and degrees of freedom.
/// Returns `None` if either sample has fewer than 2 points or both
/// variances are 0.
pub fn welch_t(a: &[f64], b: &[f64]) -> Option<(f64, f64)> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (std_dev(a).powi(2), std_dev(b).powi(2));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        return None;
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2
        / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(f64::MIN_POSITIVE);
    Some((t, df))
}

/// Two-tailed p-value of a t statistic with `df` degrees of freedom,
/// via the normal approximation for df ≥ 30 and a small-df correction
/// otherwise (adequate for the "p < 0.05 / p < 0.01" markers in the
/// tables).
pub fn two_tailed_p(t: f64, df: f64) -> f64 {
    // Student's t CDF via the regularised incomplete beta function,
    // computed with a continued fraction (Numerical Recipes §6.4).
    let x = df / (df + t * t);
    let p = incomplete_beta(0.5 * df, 0.5, x);
    p.clamp(0.0, 1.0)
}

fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    // Lentz's continued fraction.
    let mut f = 1.0;
    let mut c = 1.0;
    let mut d = 0.0;
    for i in 0..200 {
        let m = i / 2;
        let numerator = if i == 0 {
            1.0
        } else if i % 2 == 0 {
            (m as f64) * (b - m as f64) * x / ((a + 2.0 * m as f64 - 1.0) * (a + 2.0 * m as f64))
        } else {
            -(a + m as f64) * (a + b + m as f64) * x
                / ((a + 2.0 * m as f64) * (a + 2.0 * m as f64 + 1.0))
        };
        d = 1.0 + numerator * d;
        if d.abs() < 1e-30 {
            d = 1e-30;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < 1e-30 {
            c = 1e-30;
        }
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-12 {
            break;
        }
    }
    front * (f - 1.0) / a
}

fn ln_gamma(x: f64) -> f64 {
    // Lanczos approximation.
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = G[0];
        for (i, &g) in G.iter().enumerate().skip(1) {
            acc += g / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Significance marker in the paper's notation: `‡` for p<0.01, `†` for
/// p<0.05, empty otherwise. `a` and `b` are the best and second-best
/// runs of a table cell.
pub fn significance_marker(a: &[f64], b: &[f64]) -> &'static str {
    match welch_t(a, b).map(|(t, df)| two_tailed_p(t, df)) {
        Some(p) if p < 0.01 => "‡",
        Some(p) if p < 0.05 => "†",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(0.5) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn t_test_separates_distinct_samples() {
        let a = [10.0, 10.1, 9.9, 10.05, 9.95, 10.0];
        let b = [5.0, 5.1, 4.9, 5.05, 4.95, 5.0];
        let (t, df) = welch_t(&a, &b).unwrap();
        assert!(t > 10.0);
        let p = two_tailed_p(t, df);
        assert!(p < 0.01, "p {p}");
        assert_eq!(significance_marker(&a, &b), "‡");
    }

    #[test]
    fn t_test_accepts_identical_distributions() {
        let a = [1.0, 1.2, 0.8, 1.1, 0.9, 1.05, 0.95, 1.0];
        let b = [1.02, 1.15, 0.85, 1.05, 0.92, 1.0, 0.98, 1.03];
        let (t, df) = welch_t(&a, &b).unwrap();
        let p = two_tailed_p(t, df);
        assert!(p > 0.05, "p {p} should not be significant");
        assert_eq!(significance_marker(&a, &b), "");
    }

    #[test]
    fn p_value_range_and_monotonicity() {
        let p_small_t = two_tailed_p(0.1, 10.0);
        let p_large_t = two_tailed_p(5.0, 10.0);
        assert!(p_small_t > 0.9);
        assert!(p_large_t < 0.01);
        assert!((0.0..=1.0).contains(&p_small_t));
    }

    #[test]
    fn welch_handles_degenerate_input() {
        assert!(welch_t(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }
}
