//! Node Classification (§5.2.3).
//!
//! "50%, 70%, and 90% nodes are randomly picked respectively to train a
//! one-vs-rest logistic regression classifier based on their embeddings
//! and labels. The left nodes respectively are treated as the testing
//! set ... evaluated by Micro-F1 and Macro-F1."

use glodyne_embed::Embedding;
use glodyne_graph::{NodeId, Snapshot};
use glodyne_linalg::logreg::{macro_f1, micro_f1, LogRegConfig, OneVsRest};
use glodyne_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Micro-F1 and Macro-F1 of one classification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Scores {
    /// Micro-averaged F1 (accuracy in the single-label case).
    pub micro: f64,
    /// Macro-averaged F1 over classes present in the test split.
    pub macro_: f64,
}

/// Run the NC protocol on one snapshot: random `train_ratio` split,
/// one-vs-rest logistic regression on embeddings, F1 on the rest.
/// Nodes lacking an embedding or label are skipped (new nodes a method
/// failed to embed simply cannot be classified).
pub fn node_classification(
    emb: &Embedding,
    snapshot: &Snapshot,
    labels: &HashMap<NodeId, usize>,
    num_classes: usize,
    train_ratio: f64,
    seed: u64,
) -> F1Scores {
    assert!((0.0..1.0).contains(&train_ratio) && train_ratio > 0.0);
    // Usable nodes: embedded and labelled.
    let mut usable: Vec<NodeId> = snapshot
        .node_ids()
        .iter()
        .copied()
        .filter(|id| emb.get(*id).is_some() && labels.contains_key(id))
        .collect();
    if usable.len() < 4 {
        return F1Scores {
            micro: 0.0,
            macro_: 0.0,
        };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    usable.shuffle(&mut rng);
    let n_train = ((usable.len() as f64 * train_ratio).round() as usize).clamp(1, usable.len() - 1);
    let (train_ids, test_ids) = usable.split_at(n_train);

    let dim = emb.dim();
    let to_matrix = |ids: &[NodeId]| {
        let mut data = Vec::with_capacity(ids.len() * dim);
        for id in ids {
            data.extend(emb.get(*id).unwrap().iter().map(|&x| x as f64));
        }
        Matrix::from_vec(ids.len(), dim, data)
    };
    let x_train = to_matrix(train_ids);
    let y_train: Vec<usize> = train_ids.iter().map(|id| labels[id]).collect();
    let x_test = to_matrix(test_ids);
    let y_test: Vec<usize> = test_ids.iter().map(|id| labels[id]).collect();

    let cfg = LogRegConfig {
        epochs: 40,
        seed,
        ..Default::default()
    };
    let model = OneVsRest::train(&x_train, &y_train, num_classes, &cfg);
    let pred = model.predict_batch(&x_test);
    F1Scores {
        micro: micro_f1(&y_test, &pred),
        macro_: macro_f1(&y_test, &pred, num_classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::Edge;
    use rand::Rng;

    /// Snapshot of two cliques, embeddings separating them, labels by
    /// clique membership.
    fn fixture() -> (Embedding, Snapshot, HashMap<NodeId, usize>) {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(10)));
        let g = Snapshot::from_edges(&edges, &[]);
        let mut emb = Embedding::new(4);
        let mut labels = HashMap::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for v in 0..20u32 {
            let class = (v / 10) as usize;
            let center = if class == 0 { 1.0f32 } else { -1.0 };
            let vec: Vec<f32> = (0..4)
                .map(|_| center + rng.gen_range(-0.2f32..0.2))
                .collect();
            emb.set(NodeId(v), &vec);
            labels.insert(NodeId(v), class);
        }
        (emb, g, labels)
    }

    #[test]
    fn separable_labels_classified_well() {
        let (emb, g, labels) = fixture();
        let f1 = node_classification(&emb, &g, &labels, 2, 0.5, 0);
        assert!(f1.micro > 0.9, "micro {}", f1.micro);
        assert!(f1.macro_ > 0.9, "macro {}", f1.macro_);
    }

    #[test]
    fn higher_train_ratio_not_worse_on_average() {
        let (emb, g, labels) = fixture();
        let lo = node_classification(&emb, &g, &labels, 2, 0.5, 1);
        let hi = node_classification(&emb, &g, &labels, 2, 0.9, 1);
        // easy data: both near-perfect; sanity check bounds only
        assert!(lo.micro <= 1.0 && hi.micro <= 1.0);
        assert!(lo.micro >= 0.0 && hi.micro >= 0.0);
    }

    #[test]
    fn unembedded_nodes_are_skipped_gracefully() {
        let (emb, g, labels) = fixture();
        let mut partial = Embedding::new(4);
        for v in 0..12u32 {
            partial.set(NodeId(v), emb.get(NodeId(v)).unwrap());
        }
        let f1 = node_classification(&partial, &g, &labels, 2, 0.5, 2);
        assert!(f1.micro >= 0.0 && f1.micro <= 1.0);
    }

    #[test]
    fn too_few_usable_nodes_returns_zero() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let emb = Embedding::new(2);
        let labels = HashMap::new();
        let f1 = node_classification(&emb, &g, &labels, 2, 0.5, 3);
        assert_eq!(f1.micro, 0.0);
    }

    #[test]
    fn random_embeddings_score_near_chance() {
        let (_, g, labels) = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut emb = Embedding::new(4);
        for v in 0..20u32 {
            let vec: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
            emb.set(NodeId(v), &vec);
        }
        let f1 = node_classification(&emb, &g, &labels, 2, 0.5, 5);
        assert!(f1.micro < 0.95, "random features shouldn't be near-perfect");
    }
}
