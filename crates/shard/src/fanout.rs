//! Owner-filtered fan-out `nearest` across per-shard embeddings.
//!
//! A sharded deployment holds one embedding per shard, and boundary
//! (halo) nodes are trained in *every* shard that mirrors them — so a
//! node id can carry different vectors in different shards. The global
//! read surface resolves that by **ownership**: the sharded view of
//! node `n` is the vector its owner shard trained; halo copies are
//! invisible. [`union_embedding`] materialises that view (the
//! executable spec), and [`nearest_exact`] computes its `top_k`
//! *without* materialising it: each shard scans only its owned rows
//! and all candidates merge through the shared
//! [`glodyne_embed::TopKSelector`] under
//! `rank_similarity` — the same kernel (`norm_cosine` over cached
//! norms) and the same total order as `Embedding::top_k`, so the
//! fan-out result is **bit-exact** with an unsharded exact scan of the
//! owner-filtered union. Property-pinned in `tests/prop.rs`.

use glodyne_ann::{BatchQuery, IvfIndex, SearchScratch};
use glodyne_embed::embedding::norm_cosine;
use glodyne_embed::{Embedding, TopKSelector};
use glodyne_graph::NodeId;

/// One shard's read surface offered to a fan-out query.
#[derive(Clone, Copy)]
pub struct ShardView<'a> {
    /// The shard id (must match what `owner` returns for its rows).
    pub shard: u32,
    /// The shard's (latest committed) embedding.
    pub embedding: &'a Embedding,
    /// The shard's IVF index over that embedding, when ANN is enabled.
    pub index: Option<&'a IvfIndex>,
}

/// The query vector of `node` as the sharded view defines it: the copy
/// trained by its owner shard. `None` when the node has no owner or
/// its owner hasn't embedded it yet (e.g. it arrived after the owner's
/// last committed step).
fn owned_query<'a>(
    views: &[ShardView<'a>],
    owner: impl Fn(NodeId) -> Option<u32>,
    node: NodeId,
) -> Option<(&'a [f32], f32)> {
    let shard = owner(node)?;
    let view = views.iter().find(|v| v.shard == shard)?;
    Some((view.embedding.get(node)?, view.embedding.norm(node)?))
}

/// Exact global `nearest`: fan out over every shard, scan only rows
/// the shard owns, merge through one bounded `k`-heap. Bit-exact with
/// `union_embedding(views, owner).top_k(node, k)`. Empty when `node`
/// has no owned vector.
pub fn nearest_exact(
    views: &[ShardView<'_>],
    owner: impl Fn(NodeId) -> Option<u32>,
    node: NodeId,
    k: usize,
) -> Vec<(NodeId, f32)> {
    let Some((q, qn)) = owned_query(views, &owner, node) else {
        return Vec::new();
    };
    if k == 0 {
        return Vec::new();
    }
    let mut select = TopKSelector::new(k);
    for view in views {
        for (id, v, vn) in view.embedding.iter_with_norms() {
            if id == node || owner(id) != Some(view.shard) {
                continue;
            }
            select.push((id, norm_cosine(q, qn, v, vn)));
        }
    }
    select.into_sorted()
}

/// Approximate global `nearest`: probe each shard's IVF index with
/// `nprobe` cells, drop hits the shard doesn't own (halo copies), and
/// merge the survivors through one bounded `k`-heap. Shards without an
/// index contribute nothing. Because the ownership filter runs *after*
/// the per-shard index scan, each shard is over-fetched by the
/// configured factor (`k * overfetch` candidates,
/// [`ShardConfig::ann_overfetch`](crate::ShardConfig::ann_overfetch))
/// so halo hits don't crowd owned rows out of its contribution; a very
/// boundary-heavy shard can still contribute fewer than `k` owned
/// candidates — this path is approximate by contract; its recall is
/// measured in `bench_shard`. Use [`nearest_exact`] for the exact
/// guarantee.
pub fn nearest_approx(
    views: &[ShardView<'_>],
    owner: impl Fn(NodeId) -> Option<u32>,
    node: NodeId,
    k: usize,
    nprobe: usize,
    overfetch: usize,
) -> Vec<(NodeId, f32)> {
    nearest_approx_with(
        views,
        owner,
        node,
        k,
        nprobe,
        overfetch,
        &mut SearchScratch::new(),
    )
}

/// [`nearest_approx`] with caller-owned scan scratch — the batched
/// fan-out threads one scratch through every query of a batch.
/// Per-shard scans go through `IvfIndex::search_in` against the
/// shard's own embedding, so SQ8-quantized shards re-rank with the
/// exact kernel before the merge.
pub fn nearest_approx_with(
    views: &[ShardView<'_>],
    owner: impl Fn(NodeId) -> Option<u32>,
    node: NodeId,
    k: usize,
    nprobe: usize,
    overfetch: usize,
    scratch: &mut SearchScratch,
) -> Vec<(NodeId, f32)> {
    let Some((q, _)) = owned_query(views, &owner, node) else {
        return Vec::new();
    };
    if k == 0 {
        return Vec::new();
    }
    let fetch = k.saturating_mul(overfetch.max(1));
    let mut select = TopKSelector::new(k);
    for view in views {
        let Some(index) = view.index else { continue };
        for (id, sim) in index.search_in_with(view.embedding, q, fetch, nprobe, Some(node), scratch)
        {
            if owner(id) == Some(view.shard) {
                select.push((id, sim));
            }
        }
    }
    select.into_sorted()
}

/// [`nearest_exact`] for a whole batch of probe nodes against **one**
/// set of shard views: the caller snapshots router + epochs once, and
/// every query of the batch reads the same frozen views. Results are
/// positionally parallel to `nodes`; each entry is bit-exact with the
/// corresponding single-query [`nearest_exact`] over the same views.
pub fn nearest_exact_batch(
    views: &[ShardView<'_>],
    owner: impl Fn(NodeId) -> Option<u32>,
    nodes: &[NodeId],
    k: usize,
) -> Vec<Vec<(NodeId, f32)>> {
    nodes
        .iter()
        .map(|&node| nearest_exact(views, &owner, node, k))
        .collect()
}

/// [`nearest_approx`] for a whole batch against one set of shard
/// views, scanned **cell-grouped**: each shard's index groups the
/// batch's probed cells and walks every posting list once for all
/// queries probing it, instead of once per query. Per-query candidates
/// come out of the grouped scan bit-identical to the per-query path
/// (pinned in the ann crate), and each query's shard contributions
/// merge through its own `k`-heap in the same view order as
/// [`nearest_approx_with`] — so every entry is bit-exact with the
/// corresponding single-query call over the same views. Positionally
/// parallel to `nodes`; unowned probes yield empty entries.
pub fn nearest_approx_batch(
    views: &[ShardView<'_>],
    owner: impl Fn(NodeId) -> Option<u32>,
    nodes: &[NodeId],
    k: usize,
    nprobe: usize,
    overfetch: usize,
) -> Vec<Vec<(NodeId, f32)>> {
    let mut results: Vec<Vec<(NodeId, f32)>> = nodes.iter().map(|_| Vec::new()).collect();
    if k == 0 {
        return results;
    }
    // Resolve owned query vectors once; unowned probes stay empty.
    let mut slots = Vec::with_capacity(nodes.len());
    let mut queries = Vec::with_capacity(nodes.len());
    for (pos, &node) in nodes.iter().enumerate() {
        if let Some((q, _)) = owned_query(views, &owner, node) {
            slots.push(pos);
            queries.push(BatchQuery {
                query: q,
                exclude: Some(node),
            });
        }
    }
    if queries.is_empty() {
        return results;
    }
    let fetch = k.saturating_mul(overfetch.max(1));
    let mut selectors: Vec<TopKSelector> = queries.iter().map(|_| TopKSelector::new(k)).collect();
    let mut scratch = SearchScratch::new();
    for view in views {
        let Some(index) = view.index else { continue };
        let grouped =
            index.search_in_batch_with(view.embedding, &queries, fetch, nprobe, &mut scratch);
        for (select, hits) in selectors.iter_mut().zip(grouped) {
            for (id, sim) in hits {
                if owner(id) == Some(view.shard) {
                    select.push((id, sim));
                }
            }
        }
    }
    for (slot, select) in slots.into_iter().zip(selectors) {
        results[slot] = select.into_sorted();
    }
    results
}

/// Materialise the sharded global view: every owned row of every
/// shard, copied in view order. The executable spec the fan-out paths
/// are pinned against — `nearest_exact` must equal this embedding's
/// `top_k`, bit for bit.
pub fn union_embedding(
    views: &[ShardView<'_>],
    owner: impl Fn(NodeId) -> Option<u32>,
) -> Embedding {
    let dim = views.first().map_or(0, |v| v.embedding.dim());
    let mut union = Embedding::new(dim);
    for view in views {
        for (id, v) in view.embedding.iter() {
            if owner(id) == Some(view.shard) {
                union.set(id, v);
            }
        }
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random embedding (the workspace's SplitMix
    /// mixing recipe).
    fn pseudo_random(ids: &[u32], dim: usize, salt: u64) -> Embedding {
        let mut e = Embedding::new(dim);
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ salt;
        let mut next = move || {
            state = state.wrapping_mul(0xd129_42e2_96fe_94e3).wrapping_add(1);
            ((state >> 40) as f32) / 1e6 - 8.0
        };
        for &i in ids {
            let v: Vec<f32> = (0..dim).map(|_| next()).collect();
            e.set(NodeId(i), &v);
        }
        e
    }

    fn assert_bit_exact(a: &[(NodeId, f32)], b: &[(NodeId, f32)]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    /// Two shards with overlapping populations (the overlap plays the
    /// halo): ownership by id parity.
    fn two_views() -> (Embedding, Embedding) {
        let a = pseudo_random(&[0, 2, 4, 6, 8, 1, 3], 6, 1); // owns evens; 1,3 are halos
        let b = pseudo_random(&[1, 3, 5, 7, 9, 0, 2], 6, 2); // owns odds; 0,2 are halos
        (a, b)
    }

    fn owner(id: NodeId) -> Option<u32> {
        (id.0 < 10).then_some(id.0 % 2)
    }

    #[test]
    fn fanout_exact_is_bit_exact_with_the_union_scan() {
        let (a, b) = two_views();
        let views = [
            ShardView {
                shard: 0,
                embedding: &a,
                index: None,
            },
            ShardView {
                shard: 1,
                embedding: &b,
                index: None,
            },
        ];
        let union = union_embedding(&views, owner);
        assert_eq!(union.len(), 10, "halo copies dropped, owners kept");
        for probe in [0u32, 1, 5, 8] {
            for k in [1usize, 3, 10, 50] {
                let fan = nearest_exact(&views, owner, NodeId(probe), k);
                let spec = union.top_k(NodeId(probe), k);
                assert_bit_exact(&fan, &spec);
            }
        }
    }

    #[test]
    fn halo_copies_never_surface() {
        let (a, b) = two_views();
        let views = [
            ShardView {
                shard: 0,
                embedding: &a,
                index: None,
            },
            ShardView {
                shard: 1,
                embedding: &b,
                index: None,
            },
        ];
        let hits = nearest_exact(&views, owner, NodeId(0), 20);
        assert_eq!(hits.len(), 9, "every owned node once, probe excluded");
        let mut ids: Vec<u32> = hits.iter().map(|&(id, _)| id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 9, "no duplicate ids from halo copies");
        // The similarity of an odd node must come from shard 1's copy.
        let (_, sim3) = *hits.iter().find(|&&(id, _)| id == NodeId(3)).unwrap();
        let q = a.get(NodeId(0)).unwrap();
        let owner_copy = glodyne_embed::embedding::cosine(q, b.get(NodeId(3)).unwrap());
        assert_eq!(sim3.to_bits(), owner_copy.to_bits());
    }

    #[test]
    fn unowned_or_missing_probe_is_empty() {
        let (a, b) = two_views();
        let views = [
            ShardView {
                shard: 0,
                embedding: &a,
                index: None,
            },
            ShardView {
                shard: 1,
                embedding: &b,
                index: None,
            },
        ];
        assert!(nearest_exact(&views, owner, NodeId(77), 5).is_empty());
        assert!(nearest_exact(&views, owner, NodeId(0), 0).is_empty());
        // Node 11 would be owned by shard 1 per the map, but no shard
        // embedded it.
        assert!(nearest_exact(&views, |_| Some(1), NodeId(11), 5).is_empty());
    }

    #[test]
    fn fanout_ann_filters_halos_and_full_probe_matches_on_clean_splits() {
        use glodyne_ann::IvfConfig;
        // Disjoint populations (no halos): full-probe ANN fan-out must
        // equal the exact fan-out.
        let a = pseudo_random(&[0, 2, 4, 6, 8], 6, 3);
        let b = pseudo_random(&[1, 3, 5, 7, 9], 6, 4);
        let cfg = IvfConfig {
            cells: 2,
            ..Default::default()
        };
        let (ia, ib) = (IvfIndex::build(&a, &cfg), IvfIndex::build(&b, &cfg));
        let views = [
            ShardView {
                shard: 0,
                embedding: &a,
                index: Some(&ia),
            },
            ShardView {
                shard: 1,
                embedding: &b,
                index: Some(&ib),
            },
        ];
        for probe in [0u32, 3, 9] {
            let ann = nearest_approx(&views, owner, NodeId(probe), 4, usize::MAX, 2);
            let exact = nearest_exact(&views, owner, NodeId(probe), 4);
            assert_bit_exact(&ann, &exact);
        }
        // A view without an index contributes nothing (and doesn't
        // panic).
        let views = [
            ShardView {
                shard: 0,
                embedding: &a,
                index: Some(&ia),
            },
            ShardView {
                shard: 1,
                embedding: &b,
                index: None,
            },
        ];
        let hits = nearest_approx(&views, owner, NodeId(0), 10, usize::MAX, 2);
        assert!(hits.iter().all(|&(id, _)| id.0 % 2 == 0));
    }

    #[test]
    fn grouped_batch_fanout_is_bit_exact_with_per_query_calls() {
        use glodyne_ann::IvfConfig;
        // Overlapping populations (halos live on both shards) make the
        // ownership filter do real work inside the grouped scan.
        let (a, b) = two_views();
        let cfg = IvfConfig {
            cells: 3,
            ..Default::default()
        };
        let (ia, ib) = (IvfIndex::build(&a, &cfg), IvfIndex::build(&b, &cfg));
        let views = [
            ShardView {
                shard: 0,
                embedding: &a,
                index: Some(&ia),
            },
            ShardView {
                shard: 1,
                embedding: &b,
                index: Some(&ib),
            },
        ];
        // Batch mixes owned probes, a repeat, and an unowned id.
        let nodes: Vec<NodeId> = [0u32, 5, 3, 8, 0, 77].map(NodeId).to_vec();
        for nprobe in [1usize, 2, usize::MAX] {
            for overfetch in [1usize, 2, 4] {
                let batch = nearest_approx_batch(&views, owner, &nodes, 4, nprobe, overfetch);
                assert_eq!(batch.len(), nodes.len());
                let mut scratch = SearchScratch::new();
                for (&node, hits) in nodes.iter().zip(&batch) {
                    let single = nearest_approx_with(
                        &views,
                        owner,
                        node,
                        4,
                        nprobe,
                        overfetch,
                        &mut scratch,
                    );
                    assert_bit_exact(hits, &single);
                }
            }
        }
        assert!(
            nearest_approx_batch(&views, owner, &nodes, 0, 2, 2)
                .iter()
                .all(Vec::is_empty),
            "k = 0 short-circuits"
        );
    }
}
