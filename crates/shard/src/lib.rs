//! `glodyne-shard`: partition-routed sharding for GloDyNE sessions.
//!
//! The paper's Step 1 (§4.1.1) decomposes every snapshot into
//! `K = α·|V|` sub-networks whose representatives are updated
//! independently — which means a live deployment doesn't need one
//! global trainer at all. This crate supplies the layout layer that
//! turns that observation into a PowerGraph-style partition-parallel
//! serving stack:
//!
//! - [`ShardRouter`] assigns nodes to `S` shards with the workspace's
//!   from-scratch METIS (`glodyne-partition`), re-partitioning lazily
//!   when hash-placed drift accumulates and stable-mapping the new
//!   parts onto the old shard labels so unmoved regions stay put. It
//!   routes every [`GraphEvent`](glodyne_graph::GraphEvent): intra-shard
//!   edges to their one owner, cross-shard edges mirrored to both
//!   sides as **halo edges** (walks stitch across the boundary one hop
//!   deep and deterministically reflect — see the bias bound in the
//!   [`router`] docs).
//! - [`fanout`] merges per-shard `nearest` answers: each shard scans
//!   (or IVF-probes) its own rows, halo copies are filtered by
//!   ownership, and everything merges through the shared
//!   `TopKSelector` under `rank_similarity` — the exact path is
//!   bit-exact with an unsharded scan of the owner-filtered union.
//! - [`ShardedState`] is the synchronous composition (one
//!   [`EmbedderSession`](glodyne::EmbedderSession) per shard); the
//!   threaded, epoch-swapped version lives in `glodyne-serve` as
//!   `ShardedSession`.

pub mod fanout;
pub mod router;
pub mod state;

pub use fanout::{
    nearest_approx, nearest_approx_batch, nearest_exact, nearest_exact_batch, union_embedding,
    ShardView,
};
pub use router::{Rebalance, RouterStats, ShardConfig, ShardRouter};
pub use state::ShardedState;
