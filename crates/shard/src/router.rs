//! [`ShardRouter`]: partition-routed event fan-out with halo-mirrored
//! boundary edges and drift-triggered rebalancing.
//!
//! The router owns the *global* view of the dynamic network (a plain
//! [`GraphState`] mirror plus a node → shard assignment map) and turns
//! each incoming [`GraphEvent`] into the per-shard events that keep
//! every shard's local `GraphState` an exact sub-network:
//!
//! - an **intra-shard** edge goes to its one owning shard;
//! - a **cross-shard** edge is mirrored to *both* endpoint owners as a
//!   halo edge (see the module docs on halo semantics below);
//! - a node removal goes to the owner and to every shard holding a
//!   halo copy (i.e. the owners of the node's neighbours).
//!
//! **Placement invariant.** At every moment, edge `(u, v)` is present
//! in shard `s` iff `s ∈ {owner(u), owner(v)}`. Routing preserves it
//! event by event, and [`ShardRouter::rebalance`] preserves it across
//! ownership changes by emitting explicit migration events. The
//! invariant is what makes the union of the per-shard states (halo
//! mirrors deduplicated) exactly the unsharded state — property-pinned
//! in this crate's test suite.
//!
//! # Halo edges and walk stitching
//!
//! In shard `s`, a node owned elsewhere but mirrored in (a **halo
//! node**) carries exactly its cross edges into `s`-owned nodes —
//! never its full adjacency. Random walks over the shard's committed
//! snapshot therefore stitch across the boundary one hop deep: a walk
//! stepping onto a halo node *deterministically reflects* back into
//! the shard at the next step (all of the halo's local neighbours are
//! owned by `s`), because the walk machinery just keeps walking
//! whatever adjacency exists. Walks never dead-end at the boundary and
//! never leave the shard's node set.
//!
//! **Bias bound.** Relative to unsharded walks, the only distortion is
//! at the boundary: from an owned node `u` the one-step probability of
//! entering the halo is `cut(u)/deg(u)` (its cross-edge fraction), and
//! from a halo node the walk returns to owned nodes with probability
//! one. The expected fraction of walk steps spent on halo nodes is
//! hence at most `max_u cut(u)/deg(u)`, and a length-`L` walk visits
//! the halo at most `L·max_u cut(u)/deg(u)` times in expectation — the
//! exact quantity the METIS-style partitioner minimises (edge cut
//! under the balance constraint, Eq. 1–2 of the paper). The shard test
//! suite checks this bound empirically.

use glodyne_embed::config::ConfigError;
use glodyne_embed::walks::splitmix64_next;
use glodyne_graph::state::{GraphEvent, GraphEventKind, GraphState};
use glodyne_graph::NodeId;
use glodyne_partition::{partition, PartitionConfig};
use std::collections::HashMap;

/// Shard-layout parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of shards `S` (>= 1).
    pub shards: usize,
    /// Balance tolerance ε of the underlying partitioner (Eq. 2).
    pub epsilon: f64,
    /// Seed for the partitioner and the new-node fallback hash.
    pub seed: u64,
    /// Re-partition when more than this fraction of live nodes were
    /// placed by the fallback hash instead of the partitioner
    /// (drift). In `(0, 1]`.
    pub drift_threshold: f64,
    /// Don't run the partitioner below this many live nodes (tiny
    /// graphs stay on the hash placement, which is balanced enough).
    pub min_partition_nodes: usize,
    /// How many queued migration events a serving flush may forward
    /// per flush boundary when draining a drift rebalance (`0` means
    /// unlimited). Rebalancing is deferred to flush boundaries and
    /// spread across them under this budget, so a large re-partition
    /// cannot monopolise the write path. Recovery replays flush
    /// boundaries under the *same* budget, which is why this lives in
    /// the shard config rather than a runtime setter: both runs must
    /// agree for bit-exact recovery.
    pub rebalance_budget: usize,
    /// ANN fan-out over-fetch factor (>= 1): each shard's IVF index is
    /// asked for `k * ann_overfetch` candidates before the ownership
    /// filter drops halo copies. Halo hits consume candidate slots, so
    /// `1` lets a boundary-heavy shard contribute fewer than `k` owned
    /// rows (lower recall); larger factors recover recall on heavily
    /// mirrored graphs at a linearly larger per-shard merge cost. The
    /// default `2` matches the historical hard-coded fan-out.
    pub ann_overfetch: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            epsilon: 0.1,
            seed: 0,
            drift_threshold: 0.25,
            min_partition_nodes: 64,
            rebalance_budget: 256,
            ann_overfetch: 2,
        }
    }
}

impl ShardConfig {
    /// A config with `shards` shards and default tolerances.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            ..Default::default()
        }
    }

    /// Validate the parameters (the workspace's fallible-config
    /// convention: degenerate values are rejected, never repaired).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards < 1 {
            return Err(ConfigError::new("shards", "must be >= 1"));
        }
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(ConfigError::new("epsilon", "must be finite and >= 0"));
        }
        if !(self.drift_threshold > 0.0 && self.drift_threshold <= 1.0) {
            return Err(ConfigError::new("drift_threshold", "must be in (0, 1]"));
        }
        if self.min_partition_nodes < 1 {
            return Err(ConfigError::new("min_partition_nodes", "must be >= 1"));
        }
        if self.ann_overfetch < 1 {
            return Err(ConfigError::new("ann_overfetch", "must be >= 1"));
        }
        Ok(())
    }
}

/// Where one node lives and how it got there.
#[derive(Debug, Clone, Copy)]
struct Placement {
    shard: u32,
    /// `true` when the partitioner placed it; `false` for the
    /// fallback-hash placement of a node first seen between
    /// re-partitions (the drift the router watches).
    pinned: bool,
}

/// Counters describing the router's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Live nodes in the global mirror.
    pub nodes: usize,
    /// Live edges in the global mirror.
    pub edges: usize,
    /// Live nodes currently placed by the fallback hash.
    pub hash_placed: usize,
    /// Re-partitions performed.
    pub rebalances: u64,
    /// Nodes moved across shards by the last rebalance.
    pub last_moved: usize,
}

/// What one rebalance did: the migration events to forward (in order)
/// plus how many nodes changed owner.
#[derive(Debug)]
pub struct Rebalance {
    /// `(shard, event)` pairs that move mirrored state between shards;
    /// forward them to the shard sessions *before* any further routed
    /// events.
    pub events: Vec<(u32, GraphEvent)>,
    /// Nodes whose owner changed.
    pub moved: usize,
}

/// The partition-routed event router (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    cfg: ShardConfig,
    /// Global mirror of the dynamic network.
    global: GraphState,
    placement: HashMap<NodeId, Placement>,
    hash_placed: usize,
    /// Running max of event timestamps (migration events reuse it so
    /// they never drag a shard's epoch clock backwards).
    time: u64,
    rebalances: u64,
    last_moved: usize,
}

impl ShardRouter {
    /// A router over `cfg.shards` shards. Rejects a degenerate config.
    pub fn new(cfg: ShardConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(ShardRouter {
            cfg,
            global: GraphState::new(),
            placement: HashMap::new(),
            hash_placed: 0,
            time: 0,
            rebalances: 0,
            last_moved: 0,
        })
    }

    /// Number of shards routed to.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// The router's configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The shard owning `node`, if it is live.
    pub fn owner(&self, node: NodeId) -> Option<u32> {
        self.placement.get(&node).map(|p| p.shard)
    }

    /// The global (unsharded) view of the network the router has seen.
    pub fn global(&self) -> &GraphState {
        &self.global
    }

    /// Life-so-far counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            nodes: self.global.num_nodes(),
            edges: self.global.num_edges(),
            hash_placed: self.hash_placed,
            rebalances: self.rebalances,
            last_moved: self.last_moved,
        }
    }

    /// Deterministic fallback placement for a node first seen between
    /// re-partitions.
    fn fallback_shard(&self, node: NodeId) -> u32 {
        let mut state = self.cfg.seed ^ (0x9e37_79b9_7f4a_7c15 ^ u64::from(node.0));
        (splitmix64_next(&mut state) % self.cfg.shards as u64) as u32
    }

    /// Current owner of `node`, placing it by hash if it has none.
    fn place(&mut self, node: NodeId) -> u32 {
        if let Some(p) = self.placement.get(&node) {
            return p.shard;
        }
        let shard = self.fallback_shard(node);
        self.placement.insert(
            node,
            Placement {
                shard,
                pinned: false,
            },
        );
        self.hash_placed += 1;
        shard
    }

    /// Drop the placement of a node that left the global mirror.
    fn unplace_if_gone(&mut self, node: NodeId) {
        if !self.global.contains_node(node) {
            if let Some(p) = self.placement.remove(&node) {
                if !p.pinned {
                    self.hash_placed -= 1;
                }
            }
        }
    }

    /// Route one event: apply it to the global mirror and return the
    /// `(shard, event)` copies to forward. Globally ineffective events
    /// (duplicate additions, removals of absent state, self-loops)
    /// route nowhere. A cross-shard edge event is returned once per
    /// endpoint owner — the halo mirror.
    pub fn route(&mut self, event: GraphEvent) -> Vec<(u32, GraphEvent)> {
        self.time = self.time.max(event.time);
        match event.kind {
            GraphEventKind::AddEdge(e) => {
                if !self.global.apply(&event) {
                    return Vec::new();
                }
                let (a, b) = (self.place(e.u), self.place(e.v));
                if a == b {
                    vec![(a, event)]
                } else {
                    vec![(a, event), (b, event)]
                }
            }
            GraphEventKind::RemoveEdge(e) => {
                // Owners looked up *before* the apply can orphan the
                // endpoints out of the placement map.
                let (a, b) = (self.owner(e.u), self.owner(e.v));
                if !self.global.apply(&event) {
                    return Vec::new();
                }
                let (a, b) = (
                    a.expect("live edge endpoint"),
                    b.expect("live edge endpoint"),
                );
                let targets = if a == b {
                    vec![(a, event)]
                } else {
                    vec![(a, event), (b, event)]
                };
                self.unplace_if_gone(e.u);
                self.unplace_if_gone(e.v);
                targets
            }
            GraphEventKind::RemoveNode(n) => {
                // Every shard holding state about `n` must hear this:
                // the owner plus each neighbour's owner (halo hosts).
                let neighbors: Vec<NodeId> = self.global.neighbors(n).collect();
                let mut targets: Vec<u32> = self
                    .owner(n)
                    .into_iter()
                    .chain(neighbors.iter().filter_map(|&m| self.owner(m)))
                    .collect();
                targets.sort_unstable();
                targets.dedup();
                if !self.global.apply(&event) {
                    return Vec::new();
                }
                self.unplace_if_gone(n);
                for m in neighbors {
                    self.unplace_if_gone(m);
                }
                targets.into_iter().map(|s| (s, event)).collect()
            }
        }
    }

    /// Whether enough drift has accumulated for [`ShardRouter::rebalance`]
    /// to be worth running: the graph is big enough to partition and
    /// either nothing is pinned yet or the hash-placed fraction
    /// exceeds the drift threshold.
    pub fn needs_rebalance(&self) -> bool {
        let n = self.global.num_nodes();
        if self.cfg.shards < 2 || n < self.cfg.min_partition_nodes {
            return false;
        }
        let pinned = self.placement.len() - self.hash_placed;
        pinned == 0 || self.hash_placed as f64 > self.cfg.drift_threshold * n as f64
    }

    /// Rebalance if drifted (see [`ShardRouter::needs_rebalance`]);
    /// `None` when nothing needed doing.
    pub fn maybe_rebalance(&mut self) -> Option<Rebalance> {
        self.needs_rebalance().then(|| self.rebalance())
    }

    /// Re-partition the global mirror into `S` balanced parts
    /// (minimum-cut, the paper's Step 1 machinery), stable-mapped onto
    /// the current shard labels so unmoved regions keep their shard,
    /// and emit the migration events that reconcile every shard's
    /// local state with the new ownership. Forward the returned events
    /// before any subsequently routed event.
    pub fn rebalance(&mut self) -> Rebalance {
        let snap = self.global.commit();
        let n = snap.num_nodes();
        if n == 0 || self.cfg.shards < 2 {
            self.rebalances += 1;
            self.last_moved = 0;
            return Rebalance {
                events: Vec::new(),
                moved: 0,
            };
        }
        let mut part = partition(
            &snap,
            &PartitionConfig {
                k: self.cfg.shards,
                epsilon: self.cfg.epsilon,
                seed: self.cfg.seed,
                ..Default::default()
            },
        );
        // Keep the label space at S shards and minimise migrations.
        part.relabel_to_match(self.cfg.shards, |local| self.owner(snap.node_id(local)));

        let new_owner: HashMap<NodeId, u32> = (0..n)
            .map(|local| (snap.node_id(local), part.assignment[local]))
            .collect();

        // Migration events: for each live edge, the shards that stop
        // hosting it get a removal, the ones that start get an
        // addition. Removals first so a shard both losing and gaining
        // state never sees a transient duplicate.
        let mut removals = Vec::new();
        let mut additions = Vec::new();
        for e in self.global.edges() {
            let old = owner_pair(self.owner(e.u), self.owner(e.v));
            let new = owner_pair(new_owner.get(&e.u).copied(), new_owner.get(&e.v).copied());
            for s in old.iter().flatten() {
                if !new.contains(&Some(*s)) {
                    removals.push((*s, GraphEvent::remove_edge(e.u, e.v, self.time)));
                }
            }
            for s in new.iter().flatten() {
                if !old.contains(&Some(*s)) {
                    additions.push((*s, GraphEvent::add_edge(e.u, e.v, self.time)));
                }
            }
        }
        let mut events = removals;
        events.extend(additions);

        let moved = new_owner
            .iter()
            .filter(|(&node, &shard)| self.owner(node) != Some(shard))
            .count();
        self.placement = new_owner
            .into_iter()
            .map(|(node, shard)| {
                (
                    node,
                    Placement {
                        shard,
                        pinned: true,
                    },
                )
            })
            .collect();
        self.hash_placed = 0;
        self.rebalances += 1;
        self.last_moved = moved;
        Rebalance { events, moved }
    }
    /// Serialise the router's full state — placement map, drift
    /// counters, epoch clock, and the global mirror's edges — for a
    /// durable snapshot (the `PAYLOAD_ROUTER` payload of the durable
    /// crate's container format). [`ShardRouter::restore`] is the
    /// exact inverse: a restored router routes every future event
    /// identically to the original.
    pub fn export_state(&self) -> Vec<u8> {
        let mut placements: Vec<(NodeId, Placement)> =
            self.placement.iter().map(|(&n, &p)| (n, p)).collect();
        placements.sort_unstable_by_key(|&(n, _)| n);
        let edges: Vec<_> = self.global.edges().collect();
        let mut out = Vec::with_capacity(44 + placements.len() * 9 + edges.len() * 8);
        out.extend_from_slice(ROUTER_MAGIC);
        out.extend_from_slice(&ROUTER_VERSION.to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.rebalances.to_le_bytes());
        out.extend_from_slice(&(self.last_moved as u64).to_le_bytes());
        out.extend_from_slice(&(placements.len() as u32).to_le_bytes());
        for (node, p) in placements {
            out.extend_from_slice(&node.0.to_le_bytes());
            out.extend_from_slice(&p.shard.to_le_bytes());
            out.push(p.pinned as u8);
        }
        out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for e in edges {
            out.extend_from_slice(&e.u.0.to_le_bytes());
            out.extend_from_slice(&e.v.0.to_le_bytes());
        }
        out
    }

    /// Rebuild a router from [`ShardRouter::export_state`] bytes.
    /// `cfg` must be the configuration the exporting router ran with.
    /// Corrupt or truncated bytes yield `Err` — never a panic.
    pub fn restore(cfg: ShardConfig, bytes: &[u8]) -> Result<Self, String> {
        cfg.validate().map_err(|e| e.to_string())?;
        let mut r = StateReader { bytes, pos: 0 };
        if r.take(4)? != ROUTER_MAGIC {
            return Err("bad router state magic".into());
        }
        if r.u32()? != ROUTER_VERSION {
            return Err("unsupported router state version".into());
        }
        let time = r.u64()?;
        let rebalances = r.u64()?;
        let last_moved = r.u64()? as usize;
        let n_placed = r.u32()? as usize;
        if n_placed > bytes.len() / 9 {
            return Err("placement count exceeds payload".into());
        }
        let mut placement = HashMap::with_capacity(n_placed);
        let mut hash_placed = 0usize;
        for _ in 0..n_placed {
            let node = NodeId(r.u32()?);
            let shard = r.u32()?;
            if shard as usize >= cfg.shards {
                return Err(format!("placement shard {shard} out of range"));
            }
            let pinned = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err("bad pinned flag".into()),
            };
            if !pinned {
                hash_placed += 1;
            }
            if placement
                .insert(node, Placement { shard, pinned })
                .is_some()
            {
                return Err("duplicate node in placement map".into());
            }
        }
        let n_edges = r.u32()? as usize;
        if n_edges > bytes.len() / 8 {
            return Err("edge count exceeds payload".into());
        }
        let mut global = GraphState::new();
        for _ in 0..n_edges {
            let u = NodeId(r.u32()?);
            let v = NodeId(r.u32()?);
            if !global.add_edge(u, v) {
                return Err("invalid edge in router state".into());
            }
        }
        if r.pos != bytes.len() {
            return Err("trailing bytes in router state".into());
        }
        Ok(ShardRouter {
            cfg,
            global,
            placement,
            hash_placed,
            time,
            rebalances,
            last_moved,
        })
    }
}

const ROUTER_MAGIC: &[u8; 4] = b"GDRT";
const ROUTER_VERSION: u32 = 1;

/// Bounds-checked little-endian cursor for [`ShardRouter::restore`].
struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("router state truncated")?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// The (up to two) owners hosting an edge.
fn owner_pair(a: Option<u32>, b: Option<u32>) -> [Option<u32>; 2] {
    if a == b {
        [a, None]
    } else {
        [a, b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_all(shards: usize, states: &mut Vec<GraphState>, routed: &[(u32, GraphEvent)]) {
        states.resize_with(shards, GraphState::new);
        for (s, ev) in routed {
            states[*s as usize].apply(ev);
        }
    }

    /// The union of the per-shard states (mirrors deduplicated) — the
    /// reconstruction the exactness property compares to the global
    /// mirror.
    fn union(states: &[GraphState]) -> GraphState {
        let mut u = GraphState::new();
        for s in states {
            for e in s.edges() {
                u.add_edge(e.u, e.v);
            }
        }
        u
    }

    fn router(shards: usize) -> ShardRouter {
        ShardRouter::new(ShardConfig::with_shards(shards)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ShardConfig::with_shards(4).validate().is_ok());
        let mut bad = ShardConfig::with_shards(0);
        assert_eq!(bad.validate().unwrap_err().param(), "shards");
        bad = ShardConfig {
            epsilon: f64::NAN,
            ..ShardConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "epsilon");
        bad = ShardConfig {
            drift_threshold: 0.0,
            ..ShardConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "drift_threshold");
        bad = ShardConfig {
            min_partition_nodes: 0,
            ..ShardConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "min_partition_nodes");
        bad = ShardConfig {
            ann_overfetch: 0,
            ..ShardConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "ann_overfetch");
        assert!(ShardRouter::new(ShardConfig::with_shards(0)).is_err());
    }

    #[test]
    fn intra_shard_edges_route_once_cross_edges_mirror() {
        let mut r = router(4);
        let mut seen_single = false;
        let mut seen_mirrored = false;
        for i in 0..40u32 {
            let routed = r.route(GraphEvent::add_edge(NodeId(i), NodeId(i + 40), 0));
            match routed.len() {
                1 => {
                    seen_single = true;
                    assert_eq!(routed[0].0, r.owner(NodeId(i)).unwrap());
                }
                2 => {
                    seen_mirrored = true;
                    let owners: Vec<u32> = routed.iter().map(|&(s, _)| s).collect();
                    assert!(owners.contains(&r.owner(NodeId(i)).unwrap()));
                    assert!(owners.contains(&r.owner(NodeId(i + 40)).unwrap()));
                    assert_ne!(owners[0], owners[1], "mirror goes to two distinct shards");
                }
                n => panic!("an edge routes to 1 or 2 shards, got {n}"),
            }
        }
        assert!(seen_single && seen_mirrored, "hash placement spreads nodes");
    }

    #[test]
    fn ineffective_events_route_nowhere() {
        let mut r = router(2);
        assert_eq!(
            r.route(GraphEvent::add_edge(NodeId(0), NodeId(0), 0)),
            vec![]
        );
        let first = r.route(GraphEvent::add_edge(NodeId(0), NodeId(1), 0));
        assert!(!first.is_empty());
        assert_eq!(
            r.route(GraphEvent::add_edge(NodeId(1), NodeId(0), 1)),
            vec![]
        );
        assert_eq!(
            r.route(GraphEvent::remove_edge(NodeId(5), NodeId(6), 1)),
            vec![]
        );
        assert_eq!(r.route(GraphEvent::remove_node(NodeId(9), 1)), vec![]);
    }

    #[test]
    fn remove_node_reaches_every_halo_host() {
        // Force a hub with neighbours across several shards, then
        // remove it: every shard hosting a mirror must hear about it.
        let mut r = router(4);
        let mut states = Vec::new();
        let hub = NodeId(1000);
        for i in 0..16u32 {
            let routed = r.route(GraphEvent::add_edge(hub, NodeId(i), 0));
            apply_all(4, &mut states, &routed);
        }
        let hosts: std::collections::BTreeSet<u32> = (0..16u32)
            .filter_map(|i| r.owner(NodeId(i)))
            .chain(r.owner(hub))
            .collect();
        let routed = r.route(GraphEvent::remove_node(hub, 1));
        let targets: std::collections::BTreeSet<u32> = routed.iter().map(|&(s, _)| s).collect();
        assert_eq!(targets, hosts);
        apply_all(4, &mut states, &routed);
        for s in &states {
            assert!(!s.contains_node(hub), "halo copies removed everywhere");
        }
        assert_eq!(r.owner(hub), None, "placement dropped with the node");
        assert_eq!(union(&states), *r.global());
    }

    #[test]
    fn routing_is_deterministic() {
        let events: Vec<GraphEvent> = (0..30u32)
            .map(|i| GraphEvent::add_edge(NodeId(i % 7), NodeId(i % 11 + 3), u64::from(i)))
            .collect();
        let mut a = router(3);
        let mut b = router(3);
        for &ev in &events {
            assert_eq!(a.route(ev), b.route(ev));
        }
    }

    #[test]
    fn rebalance_preserves_the_union_and_stabilises_labels() {
        // Two 40-cliques joined by one bridge, ingested edge by edge:
        // hash placement scatters them, the rebalance pulls each clique
        // onto one shard — and the union is untouched.
        let mut r = ShardRouter::new(ShardConfig {
            shards: 2,
            min_partition_nodes: 8,
            ..Default::default()
        })
        .unwrap();
        let mut states = Vec::new();
        for c in 0..2u32 {
            let base = c * 40;
            for i in 0..40 {
                for j in (i + 1)..40 {
                    let routed =
                        r.route(GraphEvent::add_edge(NodeId(base + i), NodeId(base + j), 0));
                    apply_all(2, &mut states, &routed);
                }
            }
        }
        let routed = r.route(GraphEvent::add_edge(NodeId(0), NodeId(40), 0));
        apply_all(2, &mut states, &routed);

        assert!(r.needs_rebalance(), "everything is hash-placed");
        let rb = r.rebalance();
        apply_all(2, &mut states, &rb.events);
        assert_eq!(union(&states), *r.global(), "rebalance keeps the union");
        assert_eq!(r.stats().rebalances, 1);
        assert_eq!(r.stats().hash_placed, 0);

        // Each clique now lives on one shard.
        for c in 0..2u32 {
            let base = c * 40;
            let owner = r.owner(NodeId(base)).unwrap();
            for i in 0..40 {
                assert_eq!(r.owner(NodeId(base + i)), Some(owner), "clique {c}");
            }
        }

        // A second rebalance on an unchanged graph moves (almost)
        // nothing: the stable relabelling keeps the parts in place.
        let rb2 = r.rebalance();
        assert_eq!(rb2.moved, 0, "stable mapping: unchanged graph, no moves");
        assert!(rb2.events.is_empty());

        // And routing after the rebalance still lands intra-clique
        // events on the clique's one shard.
        let routed = r.route(GraphEvent::remove_edge(NodeId(1), NodeId(39), 1));
        apply_all(2, &mut states, &routed);
        assert_eq!(routed.len(), 1, "intra-clique event routes to one shard");
        assert_eq!(routed[0].0, r.owner(NodeId(1)).unwrap());
        assert_eq!(union(&states), *r.global());
    }

    #[test]
    fn single_shard_router_never_rebalances_and_routes_everything_to_zero() {
        let mut r = router(1);
        for i in 0..100u32 {
            for (s, _) in r.route(GraphEvent::add_edge(NodeId(i), NodeId(i + 1), 0)) {
                assert_eq!(s, 0);
            }
        }
        assert!(!r.needs_rebalance());
        assert!(r.maybe_rebalance().is_none());
    }

    #[test]
    fn export_restore_routes_identically() {
        let cfg = ShardConfig {
            shards: 3,
            min_partition_nodes: 8,
            ..Default::default()
        };
        let mut original = ShardRouter::new(cfg).unwrap();
        for i in 0..40u32 {
            original.route(GraphEvent::add_edge(
                NodeId(i % 13),
                NodeId(i + 5),
                u64::from(i),
            ));
        }
        original.rebalance();
        for i in 0..10u32 {
            original.route(GraphEvent::add_edge(NodeId(100 + i), NodeId(i), 50));
        }

        let bytes = original.export_state();
        let mut restored = ShardRouter::restore(cfg, &bytes).unwrap();
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(*restored.global(), *original.global());
        assert_eq!(restored.needs_rebalance(), original.needs_rebalance());

        // Every future event routes identically, including new-node
        // hash placement and a full rebalance.
        for i in 0..30u32 {
            let ev = GraphEvent::add_edge(NodeId(200 + i), NodeId(i % 17), 60 + u64::from(i));
            assert_eq!(original.route(ev), restored.route(ev));
        }
        let (a, b) = (original.rebalance(), restored.rebalance());
        assert_eq!(a.moved, b.moved);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let cfg = ShardConfig::with_shards(2);
        let mut r = ShardRouter::new(cfg).unwrap();
        for i in 0..10u32 {
            r.route(GraphEvent::add_edge(NodeId(i), NodeId(i + 1), 0));
        }
        let bytes = r.export_state();
        assert!(ShardRouter::restore(cfg, &[]).is_err());
        for cut in 0..bytes.len() {
            assert!(
                ShardRouter::restore(cfg, &bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(ShardRouter::restore(cfg, &bad_magic).is_err());
        // A shard index past the configured count is rejected.
        assert!(ShardRouter::restore(ShardConfig::with_shards(1), &bytes).is_err());
    }

    #[test]
    fn migration_timestamps_never_rewind_the_clock() {
        let mut r = ShardRouter::new(ShardConfig {
            shards: 2,
            min_partition_nodes: 4,
            ..Default::default()
        })
        .unwrap();
        for i in 0..20u32 {
            r.route(GraphEvent::add_edge(NodeId(i), NodeId(i + 1), u64::from(i)));
        }
        let rb = r.rebalance();
        for (_, ev) in &rb.events {
            assert_eq!(ev.time, 19, "migrations ride the running-max clock");
        }
    }
}
