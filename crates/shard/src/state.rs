//! [`ShardedState`]: a synchronous multi-session sharded embedder —
//! one [`EmbedderSession`] per shard behind one [`ShardRouter`].
//!
//! This is the single-threaded core of sharded serving: the CLI's
//! `stream --shards N` drives it directly, the exactness property
//! tests pin it, and `glodyne-serve`'s threaded `ShardedSession` is
//! the same router + fan-out wired through per-shard trainer threads.
//!
//! Each shard's session commits **full** snapshots
//! ([`EmbedderSession::keep_full_graph`]): a shard legitimately holds
//! several disconnected regions (its partition class plus halo
//! fragments), and reducing to the largest component would silently
//! drop training coverage the router deliberately placed there.

use crate::fanout::{self, ShardView};
use crate::router::{Rebalance, ShardConfig, ShardRouter};
use glodyne::{EmbedderSession, StepReport};
use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::DynamicEmbedder;
use glodyne_graph::id::TimedEdge;
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;

/// A sharded streaming session: `S` embedder sessions fed by a
/// partition router, queried through the owner-filtered fan-out merge.
pub struct ShardedState<E: DynamicEmbedder> {
    router: ShardRouter,
    sessions: Vec<EmbedderSession<E>>,
}

impl<E: DynamicEmbedder> ShardedState<E> {
    /// Wrap one session per shard. `sessions.len()` must equal
    /// `cfg.shards`; every session is switched to full-graph commits
    /// (see the module docs).
    pub fn new(sessions: Vec<EmbedderSession<E>>, cfg: ShardConfig) -> Result<Self, ConfigError> {
        let router = ShardRouter::new(cfg)?;
        if sessions.len() != cfg.shards {
            return Err(ConfigError::new(
                "shards",
                "one EmbedderSession per shard is required",
            ));
        }
        Ok(ShardedState {
            router,
            sessions: sessions
                .into_iter()
                .map(EmbedderSession::keep_full_graph)
                .collect(),
        })
    }

    /// Route one event into the shard sessions; returns how many
    /// embedding steps it triggered (a cross-shard edge can step two
    /// shards at once under their own epoch policies).
    ///
    /// Rebalances lazily on drift as part of the ingest path: the
    /// check is two integer compares, and waiting for an explicit
    /// flush would leave a long stream running on hash placement —
    /// maximal cut, maximal halo duplication.
    pub fn apply(&mut self, event: GraphEvent) -> usize {
        let routed = self.router.route(event);
        let steps = routed
            .into_iter()
            .filter(|&(shard, ev)| self.sessions[shard as usize].apply(ev))
            .count();
        if let Some(rb) = self.router.maybe_rebalance() {
            self.forward(rb);
        }
        steps
    }

    /// Ingest a batch of timed edges in order; returns the number of
    /// embedding steps triggered along the way.
    pub fn ingest(&mut self, edges: &[TimedEdge]) -> usize {
        edges.iter().map(|&te| self.apply(te.into())).sum()
    }

    /// Rebalance if drifted, then commit every shard's pending events
    /// as an epoch boundary. Returns one report per shard (`None`
    /// where a shard had nothing new). Rebalancing (normally already
    /// handled inside [`ShardedState::apply`]) happens *before* the
    /// commits, so the migrated layout is what trains.
    pub fn flush(&mut self) -> Vec<Option<StepReport>> {
        if let Some(rb) = self.router.maybe_rebalance() {
            self.forward(rb);
        }
        self.sessions
            .iter_mut()
            .map(EmbedderSession::flush)
            .collect()
    }

    /// Force a rebalance now (tests, operational tooling); returns how
    /// many nodes changed owner.
    pub fn rebalance(&mut self) -> usize {
        let rb = self.router.rebalance();
        let moved = rb.moved;
        self.forward(rb);
        moved
    }

    fn forward(&mut self, rb: Rebalance) {
        for (shard, ev) in rb.events {
            self.sessions[shard as usize].apply(ev);
        }
    }

    /// The live embedding vector of `node` — its owner shard's copy.
    pub fn query(&self, node: NodeId) -> Option<&[f32]> {
        let shard = self.router.owner(node)? as usize;
        self.sessions[shard].embedding().get(node)
    }

    /// Exact global `k`-nearest: per-shard scans of owned rows merged
    /// through the shared top-`k` heap — bit-exact with an unsharded
    /// exact scan over the owner-filtered union embedding.
    pub fn nearest(&self, node: NodeId, k: usize) -> Vec<(NodeId, f32)> {
        let views: Vec<ShardView<'_>> = self
            .sessions
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardView {
                shard: shard as u32,
                embedding: s.embedding(),
                index: None,
            })
            .collect();
        fanout::nearest_exact(&views, |id| self.router.owner(id), node, k)
    }

    /// Approximate global `k`-nearest via per-shard IVF probes
    /// (sessions must have been built `with_ann`; shards whose index
    /// is unbuilt contribute nothing). Builds each queried shard's
    /// lazy index first, hence `&mut self`.
    pub fn nearest_approx(&mut self, node: NodeId, k: usize, nprobe: usize) -> Vec<(NodeId, f32)> {
        // Build every shard's lazy index so the fan-out sees them.
        for s in &mut self.sessions {
            s.ensure_ann_index();
        }
        let views: Vec<ShardView<'_>> = self
            .sessions
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardView {
                shard: shard as u32,
                embedding: s.embedding(),
                index: s.ann_index(),
            })
            .collect();
        fanout::nearest_approx(
            &views,
            |id| self.router.owner(id),
            node,
            k,
            nprobe,
            self.router.config().ann_overfetch,
        )
    }

    /// The router (owners, drift counters, global mirror).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The per-shard sessions.
    pub fn sessions(&self) -> &[EmbedderSession<E>] {
        &self.sessions
    }

    /// Total committed embedding steps across all shards.
    pub fn steps(&self) -> usize {
        self.sessions.iter().map(EmbedderSession::steps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne::{EpochPolicy, GloDyNE, GloDyNEConfig};
    use glodyne_embed::walks::WalkConfig;
    use glodyne_embed::SgnsConfig;

    fn tiny_session(seed: u64) -> EmbedderSession<GloDyNE> {
        let cfg = GloDyNEConfig {
            alpha: 0.5,
            walk: WalkConfig {
                walks_per_node: 2,
                walk_length: 8,
                seed,
            },
            sgns: SgnsConfig {
                dim: 8,
                window: 2,
                negatives: 2,
                epochs: 1,
                parallel: false,
                seed,
                ..Default::default()
            },
            ..Default::default()
        };
        EmbedderSession::new(GloDyNE::new(cfg).unwrap(), EpochPolicy::Manual).unwrap()
    }

    fn sharded(shards: usize) -> ShardedState<GloDyNE> {
        let sessions = (0..shards).map(|s| tiny_session(s as u64)).collect();
        ShardedState::new(
            sessions,
            ShardConfig {
                shards,
                min_partition_nodes: 8,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Two tight communities plus one bridge.
    fn community_edges() -> Vec<TimedEdge> {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 12;
            for i in 0..12 {
                for j in (i + 1)..12 {
                    if (i + j) % 3 != 0 || j == i + 1 {
                        edges.push(TimedEdge::new(NodeId(base + i), NodeId(base + j), 0));
                    }
                }
            }
        }
        edges.push(TimedEdge::new(NodeId(0), NodeId(12), 0));
        edges
    }

    #[test]
    fn session_count_must_match_shards() {
        let sessions = vec![tiny_session(0)];
        match ShardedState::new(sessions, ShardConfig::with_shards(2)) {
            Err(err) => assert_eq!(err.param(), "shards"),
            Ok(_) => panic!("one session per shard must be enforced"),
        }
    }

    #[test]
    fn sharded_stream_trains_every_owned_node() {
        let mut s = sharded(2);
        s.ingest(&community_edges());
        let reports = s.flush();
        assert!(reports.iter().any(Option::is_some));
        // After the (drift-triggered) rebalance + flush, every live
        // node has an owner and a queryable vector.
        for id in s.router().global().nodes().collect::<Vec<_>>() {
            assert!(s.router().owner(id).is_some());
            assert!(s.query(id).is_some(), "node {id:?} embedded by its owner");
        }
    }

    #[test]
    fn nearest_is_bit_exact_with_the_union_spec() {
        let mut s = sharded(2);
        s.ingest(&community_edges());
        s.flush();
        let views: Vec<ShardView<'_>> = s
            .sessions()
            .iter()
            .enumerate()
            .map(|(shard, sess)| ShardView {
                shard: shard as u32,
                embedding: sess.embedding(),
                index: None,
            })
            .collect();
        let union = fanout::union_embedding(&views, |id| s.router().owner(id));
        for probe in [0u32, 5, 12, 20] {
            let fan = s.nearest(NodeId(probe), 6);
            let spec = union.top_k(NodeId(probe), 6);
            assert_eq!(fan.len(), spec.len(), "probe {probe}");
            for (a, b) in fan.iter().zip(&spec) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            assert!(fan.iter().all(|&(id, _)| id != NodeId(probe)));
        }
    }

    #[test]
    fn queries_resolve_through_the_owner_shard() {
        let mut s = sharded(2);
        s.ingest(&community_edges());
        s.flush();
        // The bridge endpoints are halos somewhere: their sharded-view
        // vector must equal their owner session's copy bit for bit.
        for probe in [0u32, 12] {
            let owner = s.router().owner(NodeId(probe)).unwrap() as usize;
            let owned = s.sessions()[owner].embedding().get(NodeId(probe)).unwrap();
            let viewed = s.query(NodeId(probe)).unwrap();
            assert_eq!(owned.len(), viewed.len());
            for (a, b) in owned.iter().zip(viewed) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(s.query(NodeId(999)), None);
    }

    #[test]
    fn ann_fanout_returns_owned_hits() {
        use glodyne::IvfConfig;
        let sessions = (0..2)
            .map(|sd| {
                tiny_session(sd as u64)
                    .with_ann(IvfConfig {
                        cells: 2,
                        ..Default::default()
                    })
                    .unwrap()
            })
            .collect();
        let mut s = ShardedState::new(
            sessions,
            ShardConfig {
                shards: 2,
                min_partition_nodes: 8,
                ..Default::default()
            },
        )
        .unwrap();
        s.ingest(&community_edges());
        s.flush();
        let hits = s.nearest_approx(NodeId(3), 5, usize::MAX);
        assert!(!hits.is_empty());
        for &(id, _) in &hits {
            assert_ne!(id, NodeId(3));
            assert!(s.router().owner(id).is_some(), "only owned rows surface");
        }
    }

    #[test]
    fn forced_rebalance_keeps_queries_consistent() {
        let mut s = sharded(2);
        s.ingest(&community_edges());
        s.flush();
        let moved = s.rebalance();
        s.flush();
        // Whatever moved, ownership and the global mirror stay in
        // lock-step.
        let live: Vec<NodeId> = s.router().global().nodes().collect();
        for id in live {
            assert!(s.router().owner(id).is_some());
        }
        // moved is bounded by the live node count.
        assert!(moved <= s.router().global().num_nodes());
    }
}
