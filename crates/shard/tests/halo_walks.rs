//! Halo-edge walk semantics: random walks over one shard's committed
//! snapshot stitch across the boundary exactly one hop deep,
//! deterministically reflect back off halo nodes, and spend at most a
//! `max_u cut(u)/deg(u)` fraction of their steps on the halo — the
//! bias bound documented in `glodyne_shard::router`.

use glodyne_embed::walks::{generate_walks, WalkConfig};
use glodyne_graph::state::{GraphEvent, GraphState};
use glodyne_graph::{NodeId, Snapshot};
use glodyne_shard::{ShardConfig, ShardRouter};
use std::collections::BTreeSet;

/// Route a two-community graph (tight 20-cliques, two bridges) through
/// a 2-shard router, rebalance so each community owns one shard, and
/// return shard 0's local graph plus its owned node set.
fn sharded_community() -> (ShardRouter, GraphState, BTreeSet<NodeId>) {
    let mut router = ShardRouter::new(ShardConfig {
        shards: 2,
        min_partition_nodes: 8,
        ..Default::default()
    })
    .unwrap();
    let mut states = vec![GraphState::new(), GraphState::new()];
    let feed = |router: &mut ShardRouter, states: &mut Vec<GraphState>, ev: GraphEvent| {
        for (s, ev) in router.route(ev) {
            states[s as usize].apply(&ev);
        }
    };
    for c in 0..2u32 {
        let base = c * 20;
        for i in 0..20 {
            for j in (i + 1)..20 {
                feed(
                    &mut router,
                    &mut states,
                    GraphEvent::add_edge(NodeId(base + i), NodeId(base + j), 0),
                );
            }
        }
    }
    for (a, b) in [(0u32, 20u32), (1, 21)] {
        feed(
            &mut router,
            &mut states,
            GraphEvent::add_edge(NodeId(a), NodeId(b), 0),
        );
    }
    let rb = router.rebalance();
    for (s, ev) in rb.events {
        states[s as usize].apply(&ev);
    }
    let shard0 = states.swap_remove(0);
    let owned: BTreeSet<NodeId> = shard0
        .nodes()
        .filter(|&n| router.owner(n) == Some(0))
        .collect();
    (router, shard0, owned)
}

#[test]
fn walks_reflect_off_halo_nodes_within_the_bias_bound() {
    let (_router, shard0, owned) = sharded_community();
    let snap: Snapshot = shard0.commit();
    assert_eq!(owned.len(), 20, "one community owns shard 0");
    let halo: BTreeSet<NodeId> = shard0.nodes().filter(|n| !owned.contains(n)).collect();
    assert!(!halo.is_empty(), "the bridges mirror halo nodes in");
    for &h in &halo {
        for m in shard0.neighbors(h) {
            assert!(
                owned.contains(&m),
                "halo {h:?} may only touch owned nodes in the shard"
            );
        }
    }

    // The documented bound: max over owned nodes of cut(u)/deg(u),
    // where cut(u) counts halo neighbours. Owners hold a node's full
    // adjacency, so deg here equals the global degree.
    let max_frac = owned
        .iter()
        .map(|&u| {
            let (mut cut, mut deg) = (0usize, 0usize);
            for m in shard0.neighbors(u) {
                deg += 1;
                cut += usize::from(halo.contains(&m));
            }
            cut as f64 / deg as f64
        })
        .fold(0.0f64, f64::max);
    assert!(
        max_frac > 0.0 && max_frac < 0.2,
        "boundary exists, cut is small"
    );

    let cfg = WalkConfig {
        walks_per_node: 10,
        walk_length: 20,
        seed: 7,
    };
    let starts: Vec<u32> = snap
        .node_ids()
        .iter()
        .enumerate()
        .filter(|(_, id)| owned.contains(id))
        .map(|(local, _)| local as u32)
        .collect();
    let walks = generate_walks(&snap, &starts, &cfg);
    assert_eq!(walks.len(), starts.len() * cfg.walks_per_node);

    let mut halo_steps = 0usize;
    let mut steps = 0usize;
    for walk in &walks {
        for (i, node) in walk.iter().enumerate() {
            if i > 0 {
                steps += 1;
                halo_steps += usize::from(halo.contains(node));
            }
            // Deterministic reflection: a halo visit is always followed
            // by an owned node (its truncated adjacency points only
            // back into the shard).
            if halo.contains(node) {
                if let Some(next) = walk.get(i + 1) {
                    assert!(owned.contains(next), "walk must reflect off the halo");
                }
            }
        }
    }
    let frac = halo_steps as f64 / steps as f64;
    assert!(
        frac <= max_frac,
        "halo-step fraction {frac:.4} exceeds the documented bound {max_frac:.4}"
    );

    // Reflection is deterministic: the same seed reproduces the walks.
    let again = generate_walks(&snap, &starts, &cfg);
    assert_eq!(walks, again);
}
