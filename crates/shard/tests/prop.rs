//! Property suite for the sharding layer.
//!
//! The central contract: routing any event stream through
//! [`ShardRouter`] and unioning the per-shard `GraphState`s (halo
//! mirrors deduplicate away) reconstructs **exactly** the unsharded
//! `GraphState` — additions, removals, node churn, and mid-stream
//! rebalances included. Plus the placement invariant (an edge lives
//! exactly in its endpoint owners' shards) and the fan-out merge's
//! bit-exactness against the owner-filtered union scan.

use glodyne_embed::Embedding;
use glodyne_graph::state::{GraphEvent, GraphState};
use glodyne_graph::NodeId;
use glodyne_shard::{nearest_exact, union_embedding, ShardConfig, ShardRouter, ShardView};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A pseudo-random event stream over a small node space: mostly
/// additions with removals and node churn mixed in, timestamps
/// non-decreasing with occasional stragglers.
fn event_stream(seed: u64, len: usize, nodes: u32) -> Vec<GraphEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut time = 0u64;
    (0..len)
        .map(|_| {
            time += u64::from(rng.gen_range(0..2u32));
            let t = time.saturating_sub(u64::from(rng.gen_range(0..2u32)));
            let a = NodeId(rng.gen_range(0..nodes));
            let b = NodeId(rng.gen_range(0..nodes));
            match rng.gen_range(0..10u32) {
                0..=6 => GraphEvent::add_edge(a, b, t),
                7..=8 => GraphEvent::remove_edge(a, b, t),
                _ => GraphEvent::remove_node(a, t),
            }
        })
        .collect()
}

/// The union of per-shard states with mirrors deduplicated.
fn union(states: &[GraphState]) -> GraphState {
    let mut u = GraphState::new();
    for s in states {
        for e in s.edges() {
            u.add_edge(e.u, e.v);
        }
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Partition exactness: union(per-shard states) == unsharded state
    /// after every prefix boundary, with rebalances forced mid-stream,
    /// and the placement invariant holding throughout.
    #[test]
    fn routed_union_reconstructs_the_unsharded_state(
        seed in 0u64..1000,
        shards in 1usize..6,
        len in 1usize..120,
        nodes in 2u32..40,
    ) {
        let events = event_stream(seed, len, nodes);
        let mut router = ShardRouter::new(ShardConfig {
            shards,
            min_partition_nodes: 4,
            ..Default::default()
        }).unwrap();
        let mut shard_states = vec![GraphState::new(); shards];
        let mut unsharded = GraphState::new();

        for (i, &ev) in events.iter().enumerate() {
            unsharded.apply(&ev);
            for (s, ev) in router.route(ev) {
                shard_states[s as usize].apply(&ev);
            }
            // Force a rebalance at a couple of mid-stream points (and
            // let drift trigger its own at one).
            if i == len / 2 || i == (3 * len) / 4 {
                let rb = router.rebalance();
                for (s, ev) in rb.events {
                    shard_states[s as usize].apply(&ev);
                }
            } else if i == len / 4 {
                if let Some(rb) = router.maybe_rebalance() {
                    for (s, ev) in rb.events {
                        shard_states[s as usize].apply(&ev);
                    }
                }
            }
        }

        // Exactness: the router's own mirror and the independent
        // unsharded replay agree, and the shard union reconstructs
        // both.
        prop_assert_eq!(router.global(), &unsharded);
        prop_assert_eq!(&union(&shard_states), &unsharded);

        // Placement invariant: an edge is hosted exactly by its
        // endpoint owners.
        for e in unsharded.edges() {
            let hosts: Vec<u32> = (0..shards as u32)
                .filter(|&s| shard_states[s as usize].contains_edge(e.u, e.v))
                .collect();
            let (a, b) = (router.owner(e.u).unwrap(), router.owner(e.v).unwrap());
            let mut expected = vec![a, b];
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(hosts, expected, "edge {:?}", e);
        }

        // Every live node has exactly one owner; dead nodes have none.
        for n in unsharded.nodes() {
            prop_assert!(router.owner(n).is_some());
        }
        for n in 0..nodes {
            if !unsharded.contains_node(NodeId(n)) {
                prop_assert_eq!(router.owner(NodeId(n)), None);
            }
        }
    }

    /// Fan-out exact `nearest` is bit-exact with `top_k` over the
    /// owner-filtered union embedding, for random shard counts,
    /// ownership maps, halo overlaps, and degenerate rows.
    #[test]
    fn fanout_nearest_matches_the_union_scan(
        seed in 0u64..1000,
        shards in 1usize..5,
        n in 1u32..40,
        dim in 1usize..8,
        k in 0usize..20,
        probe in 0u32..45,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Random ownership; some ids deliberately unowned.
        let owner_of: Vec<Option<u32>> = (0..n)
            .map(|_| {
                let s = rng.gen_range(0..shards as u32 + 1);
                (s < shards as u32).then_some(s)
            })
            .collect();
        let owner = |id: NodeId| *owner_of.get(id.0 as usize)?;

        // Each shard embeds its owned rows plus a random sprinkle of
        // halo copies (trained differently: different values).
        let mut shard_embs: Vec<Embedding> = Vec::new();
        for s in 0..shards {
            let mut e = Embedding::new(dim);
            for id in 0..n {
                let owned = owner_of[id as usize] == Some(s as u32);
                if owned || rng.gen_range(0..4u32) == 0 {
                    let v: Vec<f32> = (0..dim)
                        .map(|_| {
                            if rng.gen_range(0..13u32) == 0 {
                                f32::NAN
                            } else {
                                rng.gen_range(-2.0f32..2.0)
                            }
                        })
                        .collect();
                    e.set(NodeId(id), &v);
                }
            }
            shard_embs.push(e);
        }
        let views: Vec<ShardView<'_>> = shard_embs
            .iter()
            .enumerate()
            .map(|(s, e)| ShardView { shard: s as u32, embedding: e, index: None })
            .collect();

        let fan = nearest_exact(&views, owner, NodeId(probe), k);
        let union = union_embedding(&views, owner);
        let spec = union.top_k(NodeId(probe), k);
        prop_assert_eq!(fan.len(), spec.len());
        for (a, b) in fan.iter().zip(&spec) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // Contract: probe excluded, no duplicates, only owned ids.
        let mut ids: Vec<NodeId> = fan.iter().map(|&(id, _)| id).collect();
        prop_assert!(ids.iter().all(|&id| id != NodeId(probe)));
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), fan.len());
        prop_assert!(fan.iter().all(|&(id, _)| owner(id).is_some()));
    }
}
