//! glodyne-chaos: deterministic, seeded failpoints for the serving
//! stack.
//!
//! A *failpoint* is a named site compiled into production code paths
//! (WAL append, fsync, snapshot write, ingest enqueue, trainer step,
//! socket I/O). In normal operation every site is a single relaxed
//! atomic load — the global armed flag — and nothing else: no lock, no
//! map lookup, no branch-heavy schedule evaluation. Tests (and the
//! `GLODYNE_CHAOS` environment variable) arm sites with [`Rule`]s that
//! fire [`Action`]s: return an injected error, sleep, stall until
//! released, or panic.
//!
//! Everything is deterministic: probabilistic rules draw from a
//! seeded splitmix64 stream per site, and hit/fired counters let a
//! harness assert exactly how many injections landed. The registry is
//! process-global, so tests that arm overlapping sites must serialize
//! (the serving crate's chaos suite holds a shared lock) or use
//! distinct site names.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Canonical site names threaded through the stack. A site name is
/// just a string key — crates may mint their own — but the shared
/// surfaces live here so tests and docs agree on spelling.
pub mod sites {
    /// One WAL record append (buffered write).
    pub const WAL_APPEND: &str = "wal.append";
    /// One WAL fsync (`sync_data`).
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// One snapshot container write (serialize + write + rename).
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// One event handed to the ingest queue.
    pub const INGEST_ENQUEUE: &str = "ingest.enqueue";
    /// One trainer-loop message about to be processed.
    pub const TRAINER_STEP: &str = "trainer.step";
    /// One line read from a client socket.
    pub const SOCKET_READ: &str = "socket.read";
    /// One response written to a client socket.
    pub const SOCKET_WRITE: &str = "socket.write";
}

/// What a fired failpoint does to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return an injected error ([`injected_error`]).
    Fail,
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
    /// Block until the site is cleared, the registry is disarmed, or
    /// the safety cap ([`MAX_STALL`]) expires.
    Stall,
    /// Panic (`panic!`) — exercises the watchdog / catch-unwind paths.
    Panic,
}

/// When a site's action fires.
#[derive(Debug, Clone)]
pub enum Rule {
    /// Never fire (same as an unconfigured site).
    Off,
    /// Fire on every hit.
    Always(Action),
    /// Fire on the first `n` hits, then go quiet.
    Times(Action, u64),
    /// Fire on hits `n`, `2n`, `3n`, …
    EveryNth(Action, u64),
    /// Fire with probability `permille`/1000 per hit, drawn from a
    /// splitmix64 stream seeded with `seed` — the same seed always
    /// yields the same firing pattern.
    Prob(Action, u32, u64),
}

/// Stalls self-release after this long even if never cleared, so a
/// forgotten failpoint degrades a test run instead of deadlocking it.
pub const MAX_STALL: Duration = Duration::from_secs(30);

static ARMED: AtomicBool = AtomicBool::new(false);

struct Site {
    rule: Rule,
    hits: u64,
    fired: u64,
    rng: u64,
}

struct Registry {
    sites: Mutex<HashMap<String, Site>>,
    /// Stall release: bump the generation + notify to wake stalled
    /// threads. Every mutation of the registry releases stalls, so a
    /// stalled thread re-checks the world after any `set`/`clear`.
    release: Mutex<u64>,
    released: Condvar,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        sites: Mutex::new(HashMap::new()),
        release: Mutex::new(0),
        released: Condvar::new(),
    })
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether any site is armed. One relaxed load — the entire cost of a
/// failpoint in production.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Evaluate `site`: `None` when nothing fires (including the disarmed
/// fast path), `Some(action)` when the armed rule fires on this hit.
/// The registry lock is held only for the evaluation; the action's
/// side effect (sleep, stall, panic) is the caller's — use the
/// [`fail_io`]/[`shed`]/[`slow`] wrappers unless the call site needs
/// custom handling.
#[inline]
pub fn hit(site: &str) -> Option<Action> {
    if !armed() {
        return None;
    }
    hit_slow(site)
}

fn hit_slow(site: &str) -> Option<Action> {
    let mut sites = registry()
        .sites
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let state = sites.get_mut(site)?;
    state.hits += 1;
    let fire = match &mut state.rule {
        Rule::Off => None,
        Rule::Always(a) => Some(*a),
        Rule::Times(a, n) => {
            if *n > 0 {
                *n -= 1;
                Some(*a)
            } else {
                None
            }
        }
        Rule::EveryNth(a, n) => {
            if *n > 0 && state.hits % *n == 0 {
                Some(*a)
            } else {
                None
            }
        }
        Rule::Prob(a, permille, _) => {
            if splitmix64(&mut state.rng) % 1000 < u64::from(*permille) {
                Some(*a)
            } else {
                None
            }
        }
    };
    if fire.is_some() {
        state.fired += 1;
    }
    fire
}

/// The error every [`Action::Fail`] surfaces: `io::ErrorKind::Other`,
/// message naming the site, so injected failures are unmistakable in
/// logs and assertions.
pub fn injected_error(site: &str) -> io::Error {
    io::Error::other(format!("chaos: injected failure at {site}"))
}

/// Block until the registry changes or [`MAX_STALL`] expires.
fn stall() {
    let reg = registry();
    let mut gen = reg.release.lock().unwrap_or_else(PoisonError::into_inner);
    let g0 = *gen;
    let start = Instant::now();
    while *gen == g0 && armed() {
        if start.elapsed() >= MAX_STALL {
            eprintln!("glodyne-chaos: stall exceeded {MAX_STALL:?}; releasing");
            break;
        }
        let (g, _) = reg
            .released
            .wait_timeout(gen, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
        gen = g;
    }
}

fn apply_side_effect(site: &str, action: Action) {
    match action {
        Action::Fail => {}
        Action::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
        Action::Stall => stall(),
        Action::Panic => panic!("chaos: injected panic at {site}"),
    }
}

/// Failpoint for I/O paths: fires delays/stalls/panics in place and
/// turns [`Action::Fail`] into an `Err` the caller propagates.
#[inline]
pub fn fail_io(site: &str) -> io::Result<()> {
    match hit(site) {
        None => Ok(()),
        Some(Action::Fail) => Err(injected_error(site)),
        Some(other) => {
            apply_side_effect(site, other);
            Ok(())
        }
    }
}

/// Failpoint for load-shed paths: returns `true` when the caller
/// should reject this unit of work ([`Action::Fail`] fired); delays,
/// stalls, and panics take effect in place.
#[inline]
pub fn shed(site: &str) -> bool {
    match hit(site) {
        None => false,
        Some(Action::Fail) => true,
        Some(other) => {
            apply_side_effect(site, other);
            false
        }
    }
}

/// Failpoint for paths with no error channel: delays, stalls, and
/// panics take effect; [`Action::Fail`] is a no-op.
#[inline]
pub fn slow(site: &str) {
    if let Some(action) = hit(site) {
        if action != Action::Fail {
            apply_side_effect(site, action);
        }
    }
}

fn release_stalls() {
    let reg = registry();
    *reg.release.lock().unwrap_or_else(PoisonError::into_inner) += 1;
    reg.released.notify_all();
}

fn recount_armed(sites: &HashMap<String, Site>) {
    let any = sites.values().any(|s| !matches!(s.rule, Rule::Off));
    ARMED.store(any, Ordering::Relaxed);
}

/// Arm `site` with `rule` (replacing any prior rule; counters reset).
/// Probabilistic rules are seeded from the rule itself.
pub fn set(site: &str, rule: Rule) {
    let reg = registry();
    {
        let mut sites = reg.sites.lock().unwrap_or_else(PoisonError::into_inner);
        let seed = match &rule {
            Rule::Prob(_, _, seed) => *seed,
            _ => 0,
        };
        sites.insert(
            site.to_string(),
            Site {
                rule,
                hits: 0,
                fired: 0,
                rng: seed,
            },
        );
        recount_armed(&sites);
    }
    release_stalls();
}

/// Disarm one site (its counters are dropped too).
pub fn clear(site: &str) {
    let reg = registry();
    {
        let mut sites = reg.sites.lock().unwrap_or_else(PoisonError::into_inner);
        sites.remove(site);
        recount_armed(&sites);
    }
    release_stalls();
}

/// Disarm every site and wake every stalled thread — the harness
/// teardown call.
pub fn disarm() {
    let reg = registry();
    {
        let mut sites = reg.sites.lock().unwrap_or_else(PoisonError::into_inner);
        sites.clear();
        ARMED.store(false, Ordering::Relaxed);
    }
    release_stalls();
}

/// Evaluations of `site` since it was armed.
pub fn hits(site: &str) -> u64 {
    let sites = registry()
        .sites
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    sites.get(site).map_or(0, |s| s.hits)
}

/// Actions fired at `site` since it was armed.
pub fn fired(site: &str) -> u64 {
    let sites = registry()
        .sites
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    sites.get(site).map_or(0, |s| s.fired)
}

/// Parse one rule spec (the part after `=` in [`configure_from_spec`]).
///
/// Grammar: `off`, or `ACTION[MODIFIER]` where `ACTION` is `fail`,
/// `panic`, `stall`, or `delay(<ms>)`, and `MODIFIER` is `*<n>` (first
/// n hits), `/<n>` (every nth hit), or `%<permille>[@<seed>]` (seeded
/// probability, seed defaults to 0).
pub fn parse_rule(spec: &str) -> Result<Rule, String> {
    let spec = spec.trim();
    if spec == "off" {
        return Ok(Rule::Off);
    }
    let bad = |what: &str| format!("invalid failpoint rule '{spec}': {what}");
    let (action_str, modifier) = match spec.find(['*', '/', '%']) {
        Some(i) => (&spec[..i], Some((spec.as_bytes()[i], &spec[i + 1..]))),
        None => (spec, None),
    };
    let action = if action_str == "fail" {
        Action::Fail
    } else if action_str == "panic" {
        Action::Panic
    } else if action_str == "stall" {
        Action::Stall
    } else if let Some(ms) = action_str
        .strip_prefix("delay(")
        .and_then(|s| s.strip_suffix(')'))
    {
        let ms = ms.parse::<u64>().map_err(|_| bad("bad delay millis"))?;
        Action::Delay(ms)
    } else {
        return Err(bad(
            "unknown action (expected fail, panic, stall, delay(<ms>))",
        ));
    };
    match modifier {
        None => Ok(Rule::Always(action)),
        Some((b'*', n)) => {
            let n = n
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| bad("bad '*<n>' count"))?;
            Ok(Rule::Times(action, n))
        }
        Some((b'/', n)) => {
            let n = n
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| bad("bad '/<n>' stride"))?;
            Ok(Rule::EveryNth(action, n))
        }
        Some((b'%', rest)) => {
            let (p, seed) = match rest.split_once('@') {
                Some((p, seed)) => (p, seed.parse::<u64>().map_err(|_| bad("bad '@<seed>'"))?),
                None => (rest, 0),
            };
            let p = p
                .parse::<u32>()
                .ok()
                .filter(|&p| p <= 1000)
                .ok_or_else(|| bad("bad '%<permille>' (0..=1000)"))?;
            Ok(Rule::Prob(action, p, seed))
        }
        Some(_) => unreachable!("find limited to * / %"),
    }
}

/// Arm sites from a `site=rule[;site=rule…]` spec — the wire format of
/// the `GLODYNE_CHAOS` environment variable and any CLI flag.
pub fn configure_from_spec(spec: &str) -> Result<(), String> {
    // Validate everything before arming anything.
    let mut parsed = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, rule) = part
            .split_once('=')
            .ok_or_else(|| format!("invalid failpoint spec '{part}': expected site=rule"))?;
        parsed.push((site.trim().to_string(), parse_rule(rule)?));
    }
    for (site, rule) in parsed {
        set(&site, rule);
    }
    Ok(())
}

/// Arm sites from `GLODYNE_CHAOS` when it is set. Returns whether
/// anything was armed.
pub fn configure_from_env() -> Result<bool, String> {
    match std::env::var("GLODYNE_CHAOS") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure_from_spec(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; each test uses its own site
    // names so the suite can run in parallel.

    #[test]
    fn disarmed_site_never_fires() {
        assert!(!armed() || hit("t.unconfigured").is_none());
        assert_eq!(hit("t.unconfigured"), None);
        assert!(fail_io("t.unconfigured").is_ok());
        assert!(!shed("t.unconfigured"));
    }

    #[test]
    fn times_rule_fires_exactly_n() {
        set("t.times", Rule::Times(Action::Fail, 3));
        let fired_now: Vec<bool> = (0..6).map(|_| hit("t.times").is_some()).collect();
        assert_eq!(fired_now, [true, true, true, false, false, false]);
        assert_eq!(hits("t.times"), 6);
        assert_eq!(fired("t.times"), 3);
        clear("t.times");
    }

    #[test]
    fn every_nth_rule_fires_on_stride() {
        set("t.nth", Rule::EveryNth(Action::Fail, 3));
        let fired_now: Vec<bool> = (0..7).map(|_| hit("t.nth").is_some()).collect();
        assert_eq!(fired_now, [false, false, true, false, false, true, false]);
        clear("t.nth");
    }

    #[test]
    fn prob_rule_is_deterministic_per_seed() {
        set("t.prob-a", Rule::Prob(Action::Fail, 500, 42));
        let a: Vec<bool> = (0..64).map(|_| hit("t.prob-a").is_some()).collect();
        set("t.prob-a", Rule::Prob(Action::Fail, 500, 42));
        let b: Vec<bool> = (0..64).map(|_| hit("t.prob-a").is_some()).collect();
        assert_eq!(a, b, "same seed, same firing pattern");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        clear("t.prob-a");
    }

    #[test]
    fn fail_io_surfaces_injected_error() {
        set("t.io", Rule::Always(Action::Fail));
        let err = fail_io("t.io").unwrap_err();
        assert!(err.to_string().contains("t.io"));
        clear("t.io");
        assert!(fail_io("t.io").is_ok());
    }

    #[test]
    fn delay_action_sleeps() {
        set("t.delay", Rule::Always(Action::Delay(20)));
        let start = Instant::now();
        fail_io("t.delay").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
        clear("t.delay");
    }

    #[test]
    fn stall_blocks_until_cleared() {
        set("t.stall", Rule::Times(Action::Stall, 1));
        let handle = std::thread::spawn(|| {
            let start = Instant::now();
            slow("t.stall");
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(60));
        clear("t.stall");
        let stalled_for = handle.join().unwrap();
        assert!(
            stalled_for >= Duration::from_millis(50),
            "stall held until release ({stalled_for:?})"
        );
    }

    #[test]
    fn shed_reports_fail_and_applies_delay() {
        set("t.shed", Rule::Times(Action::Fail, 1));
        assert!(shed("t.shed"));
        assert!(!shed("t.shed"));
        clear("t.shed");
    }

    #[test]
    fn rule_spec_round_trips() {
        assert!(matches!(parse_rule("off").unwrap(), Rule::Off));
        assert!(matches!(
            parse_rule("fail").unwrap(),
            Rule::Always(Action::Fail)
        ));
        assert!(matches!(
            parse_rule("delay(15)*2").unwrap(),
            Rule::Times(Action::Delay(15), 2)
        ));
        assert!(matches!(
            parse_rule("panic/4").unwrap(),
            Rule::EveryNth(Action::Panic, 4)
        ));
        assert!(matches!(
            parse_rule("stall%250@9").unwrap(),
            Rule::Prob(Action::Stall, 250, 9)
        ));
        assert!(matches!(
            parse_rule("fail%250").unwrap(),
            Rule::Prob(Action::Fail, 250, 0)
        ));
        for bad in [
            "explode",
            "delay(x)",
            "fail*0",
            "fail/0",
            "fail%1001",
            "fail%10@x",
        ] {
            assert!(parse_rule(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn spec_arms_multiple_sites_or_nothing() {
        configure_from_spec("t.spec-a=fail*1; t.spec-b=delay(1)").unwrap();
        assert!(hit("t.spec-a").is_some());
        assert!(hit("t.spec-b").is_some());
        clear("t.spec-a");
        clear("t.spec-b");
        assert!(configure_from_spec("t.spec-c=fail; t.spec-d").is_err());
        // The invalid spec armed nothing, including the valid prefix.
        assert_eq!(hits("t.spec-c"), 0);
    }

    #[test]
    fn disabled_fast_path_is_cheap() {
        // Not a benchmark — a smoke bound that an unfired site costs
        // nanoseconds per evaluation (one relaxed load when the whole
        // registry is disarmed; at worst a lock + empty map probe when
        // a parallel test armed some other site). 10M evaluations in
        // seconds leaves a wide margin either way.
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..10_000_000u64 {
            if hit("t.fast").is_some() {
                acc += 1;
            }
        }
        assert_eq!(acc, 0);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "unfired hit() took {:?} for 10M calls",
            start.elapsed()
        );
    }
}
