//! Synthetic dynamic-network generators calibrated to the six datasets
//! of §5.1.1 (plus the §5.2.4 hyperlink scale test).
//!
//! The paper's datasets (SNAP/KONECT downloads) are unavailable offline;
//! per the reproduction's substitution policy (see DESIGN.md §3) each is
//! replaced by a synthetic process that preserves the properties the
//! experiments actually exercise:
//!
//! | Paper dataset | Generator | Preserved behaviour |
//! |---|---|---|
//! | AS733 (router AS graph)   | [`as733`]   | node **additions and deletions** (the property that makes DynLINE/tNE n/a), random-mesh topology, 21 snapshots |
//! | Elec (wiki admin votes)   | [`elec`]    | additions only, slowly growing dense-ish vote graph, 21 snapshots |
//! | FBW (Facebook wall posts) | [`fbw`]     | strong community structure, **bursty localized activity** → inactive sub-networks, 21 snapshots |
//! | HepPh (co-author)         | [`hepph`]   | clique-per-paper growth, preferential attachment, high density, 21 snapshots |
//! | Cora (citation, labels)   | [`cora`]    | 10 planted communities (labels), growing citation DAG shape, 11 snapshots |
//! | DBLP (co-author, labels)  | [`dblp`]    | 15 planted communities (labels), clique growth, 11 snapshots |
//! | de-wiki hyperlink (scale) | [`hyperlink`] | large preferential-attachment graph with light churn, 11 snapshots |
//!
//! All generators take a `scale` factor (1.0 ≈ hundreds of nodes —
//! laptop-sized; the paper's graphs are 10–100× larger) and a seed, and
//! are fully deterministic.

pub mod churn;
pub mod community;
pub mod growth;

use glodyne_graph::{DynamicNetwork, NodeId};
use std::collections::HashMap;

/// A ready-to-run dynamic network plus optional node labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name matching the paper's table columns.
    pub name: &'static str,
    /// The snapshot sequence.
    pub network: DynamicNetwork,
    /// Node labels (Cora/DBLP only).
    pub labels: Option<HashMap<NodeId, usize>>,
    /// Number of label classes (0 when unlabelled).
    pub num_classes: usize,
}

impl Dataset {
    fn unlabelled(name: &'static str, network: DynamicNetwork) -> Self {
        Dataset {
            name,
            network,
            labels: None,
            num_classes: 0,
        }
    }
}

/// AS733 analogue: router mesh with node churn, 21 snapshots.
pub fn as733(scale: f64, seed: u64) -> Dataset {
    Dataset::unlabelled("AS733", churn::router_mesh(scale, 21, seed))
}

/// Elec analogue: growing vote network, additions only, 21 snapshots.
pub fn elec(scale: f64, seed: u64) -> Dataset {
    Dataset::unlabelled("Elec", growth::vote_network(scale, 21, seed))
}

/// FBW analogue: community wall-post network with bursty localized
/// activity, 21 snapshots.
pub fn fbw(scale: f64, seed: u64) -> Dataset {
    Dataset::unlabelled("FBW", community::wall_posts(scale, 21, seed))
}

/// HepPh analogue: dense co-author clique growth, 21 snapshots.
pub fn hepph(scale: f64, seed: u64) -> Dataset {
    Dataset::unlabelled("HepPh", growth::coauthor_cliques(scale, 21, seed))
}

/// Cora analogue: labelled citation network, 10 classes, 11 snapshots.
pub fn cora(scale: f64, seed: u64) -> Dataset {
    let (network, labels) = community::labelled_sbm(scale, 10, 11, false, seed);
    Dataset {
        name: "Cora",
        network,
        labels: Some(labels),
        num_classes: 10,
    }
}

/// DBLP analogue: labelled co-author network, 15 classes, 11 snapshots.
pub fn dblp(scale: f64, seed: u64) -> Dataset {
    let (network, labels) = community::labelled_sbm(scale, 15, 11, true, seed);
    Dataset {
        name: "DBLP",
        network,
        labels: Some(labels),
        num_classes: 15,
    }
}

/// Hyperlink analogue for the §5.2.4 scalability test: a larger
/// preferential-attachment graph with light churn, 11 snapshots.
pub fn hyperlink(scale: f64, seed: u64) -> Dataset {
    Dataset::unlabelled("Hyperlink", growth::hyperlink(scale, 11, seed))
}

/// The six-dataset suite in the paper's column order
/// (AS733, Cora, DBLP, Elec, FBW, HepPh).
pub fn standard_suite(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        as733(scale, seed),
        cora(scale, seed.wrapping_add(1)),
        dblp(scale, seed.wrapping_add(2)),
        elec(scale, seed.wrapping_add(3)),
        fbw(scale, seed.wrapping_add(4)),
        hepph(scale, seed.wrapping_add(5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_paper_shape() {
        let suite = standard_suite(0.3, 7);
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["AS733", "Cora", "DBLP", "Elec", "FBW", "HepPh"]);
        for d in &suite {
            let expected = if d.name == "Cora" || d.name == "DBLP" {
                11
            } else {
                21
            };
            assert_eq!(d.network.len(), expected, "{} snapshot count", d.name);
        }
    }

    #[test]
    fn labelled_datasets_have_labels_for_all_nodes() {
        for d in [cora(0.3, 1), dblp(0.3, 2)] {
            let labels = d.labels.as_ref().unwrap();
            let last = d.network.snapshot(d.network.len() - 1);
            for &id in last.node_ids() {
                let l = labels.get(&id).copied();
                assert!(l.is_some(), "{}: node {id} unlabelled", d.name);
                assert!(l.unwrap() < d.num_classes);
            }
        }
    }

    #[test]
    fn networks_grow_over_time() {
        for d in [elec(0.3, 3), hepph(0.3, 4), cora(0.3, 5)] {
            let first = d.network.snapshot(0).num_nodes();
            let last = d.network.snapshot(d.network.len() - 1).num_nodes();
            assert!(last > first, "{}: {first} -> {last} did not grow", d.name);
        }
    }

    #[test]
    fn as733_has_deletions() {
        let d = as733(0.5, 6);
        let mut saw_removal = false;
        for t in 1..d.network.len() {
            if !d.network.diff_at(t).removed.is_empty() {
                saw_removal = true;
                break;
            }
        }
        assert!(saw_removal, "AS733 analogue must exhibit edge deletions");
    }

    #[test]
    fn snapshots_are_connected() {
        // The paper keeps LCCs, so every snapshot must be connected.
        for d in standard_suite(0.25, 9) {
            for (t, s) in d.network.snapshots().iter().enumerate() {
                let (_, k) = glodyne_graph::components::connected_components(s);
                assert!(k <= 1, "{} snapshot {t} has {k} components", d.name);
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = fbw(0.3, 11);
        let b = fbw(0.3, 11);
        for t in 0..a.network.len() {
            assert_eq!(
                a.network.snapshot(t).num_edges(),
                b.network.snapshot(t).num_edges()
            );
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = elec(0.2, 12);
        let big = elec(0.8, 12);
        assert!(big.network.snapshot(0).num_nodes() > small.network.snapshot(0).num_nodes());
    }
}
