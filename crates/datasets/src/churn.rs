//! Churning process with node additions *and* deletions: the AS733
//! analogue. In the paper AS733 is the only dataset with node deletions,
//! which is what makes DynLINE and tNE "n/a" on it (§5.2).

use glodyne_graph::{DynamicNetwork, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Router-mesh dynamic network: random mesh with a stable backbone core
/// plus per-step node/edge churn (devices "regularly connect to or
/// accidentally disconnect from routers", §1).
pub fn router_mesh(scale: f64, steps: usize, seed: u64) -> DynamicNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n0 = ((300.0 * scale) as u32).max(40);
    let core = (n0 / 5).max(8); // backbone routers never churn

    let mut builder = GraphBuilder::new();
    let mut next_id = 0u32;
    let mut alive: Vec<u32> = Vec::new();

    // Backbone: a well-connected core mesh.
    for _ in 0..core {
        alive.push(next_id);
        next_id += 1;
    }
    for i in 0..core {
        let j = (i + 1) % core;
        builder.add_edge(NodeId(alive[i as usize]), NodeId(alive[j as usize]));
        // chord
        let k = (i + core / 2) % core;
        builder.add_edge(NodeId(alive[i as usize]), NodeId(alive[k as usize]));
    }

    // Leaf routers attach to 1–3 existing routers.
    let attach = |builder: &mut GraphBuilder,
                  alive: &mut Vec<u32>,
                  next_id: &mut u32,
                  rng: &mut ChaCha8Rng| {
        let v = *next_id;
        *next_id += 1;
        let links = rng.gen_range(1..=3usize);
        for _ in 0..links {
            let u = alive[rng.gen_range(0..alive.len())];
            builder.add_edge(NodeId(v), NodeId(u));
        }
        alive.push(v);
    };
    for _ in core..n0 {
        attach(&mut builder, &mut alive, &mut next_id, &mut rng);
    }

    let mut net = DynamicNetwork::default();
    net.push(builder.snapshot_lcc());

    for _ in 1..steps {
        // Deletions: ~2% of non-core routers drop out.
        let deletable: Vec<u32> = alive.iter().copied().filter(|&v| v >= core).collect();
        let drop_n = ((deletable.len() as f64) * 0.02).ceil() as usize;
        let mut shuffled = deletable;
        shuffled.shuffle(&mut rng);
        for &v in shuffled.iter().take(drop_n) {
            builder.remove_node(NodeId(v));
            alive.retain(|&a| a != v);
        }
        // Link failures: ~1% of edges, biased toward *peripheral* links
        // (an endpoint of low degree). Real AS churn drops transient
        // leaf connections while the backbone persists, which is what
        // makes deletions partially predictable (the paper's LP task
        // treats deleted edges as negatives).
        let snap_now = builder.snapshot();
        let mut edges: Vec<_> = builder.edges().collect();
        let deg_of = |id: NodeId| {
            snap_now
                .local_of(id)
                .map(|l| snap_now.degree(l))
                .unwrap_or(0)
        };
        edges.sort_by_key(|e| deg_of(e.u).min(deg_of(e.v)));
        let peripheral = (edges.len() / 3).max(1);
        let fail_n = ((edges.len() as f64) * 0.01).ceil() as usize;
        for _ in 0..fail_n {
            let e = edges[rng.gen_range(0..peripheral)];
            // never cut the backbone ring
            if e.u.0 < core && e.v.0 < core {
                continue;
            }
            builder.remove_edge(e.u, e.v);
        }
        // Additions: ~3% new routers plus fresh links.
        let add_n = ((alive.len() as f64) * 0.03).ceil() as usize;
        for _ in 0..add_n {
            attach(&mut builder, &mut alive, &mut next_id, &mut rng);
        }
        // New peerings mostly close triangles (ASes peer with their
        // neighbours' neighbours), with a small random component —
        // that topological locality is what makes future links
        // predictable from embeddings (the paper's LP task).
        let snap_mid = builder.snapshot();
        let relink = ((alive.len() as f64) * 0.05).ceil() as usize;
        for _ in 0..relink {
            if rng.gen::<f64>() < 0.8 {
                // triadic closure: a — b — c becomes a — c
                let Some(la) = snap_mid.local_of(NodeId(alive[rng.gen_range(0..alive.len())]))
                else {
                    continue;
                };
                let ns = snap_mid.neighbors(la);
                if ns.is_empty() {
                    continue;
                }
                let lb = ns[rng.gen_range(0..ns.len())] as usize;
                let ns_b = snap_mid.neighbors(lb);
                if ns_b.is_empty() {
                    continue;
                }
                let lc = ns_b[rng.gen_range(0..ns_b.len())] as usize;
                if lc != la {
                    builder.add_edge(snap_mid.node_id(la), snap_mid.node_id(lc));
                }
            } else {
                let a = alive[rng.gen_range(0..alive.len())];
                let b = alive[rng.gen_range(0..alive.len())];
                if a != b {
                    builder.add_edge(NodeId(a), NodeId(b));
                }
            }
        }
        net.push(builder.snapshot_lcc());
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_node_deletions() {
        let net = router_mesh(0.5, 10, 1);
        let mut deleted = false;
        for t in 1..net.len() {
            let prev = net.snapshot(t - 1);
            let curr = net.snapshot(t);
            if prev
                .node_ids()
                .iter()
                .any(|id| curr.local_of(*id).is_none())
            {
                deleted = true;
                break;
            }
        }
        assert!(deleted, "router mesh must delete nodes");
    }

    #[test]
    fn has_node_additions() {
        let net = router_mesh(0.5, 10, 2);
        let mut added = false;
        for t in 1..net.len() {
            let prev = net.snapshot(t - 1);
            let curr = net.snapshot(t);
            if curr
                .node_ids()
                .iter()
                .any(|id| prev.local_of(*id).is_none())
            {
                added = true;
                break;
            }
        }
        assert!(added);
    }

    #[test]
    fn every_snapshot_connected_and_nonempty() {
        let net = router_mesh(0.4, 8, 3);
        for (t, s) in net.snapshots().iter().enumerate() {
            assert!(s.num_nodes() > 0, "snapshot {t} empty");
            let (_, k) = glodyne_graph::components::connected_components(s);
            assert!(k <= 1, "snapshot {t} disconnected");
        }
    }

    #[test]
    fn backbone_core_survives() {
        let net = router_mesh(0.4, 12, 4);
        let last = net.snapshot(net.len() - 1);
        // node 0 is a core router and should persist across all churn
        assert!(last.local_of(NodeId(0)).is_some());
    }
}
