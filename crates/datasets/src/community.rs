//! Community-structured generators: FBW (bursty localized activity) and
//! the labelled SBM processes behind Cora/DBLP.
//!
//! The FBW process is the one that manufactures the paper's central
//! observation (Figure 1 d–f): "real-world dynamic networks usually have
//! some inactive sub-networks where no change occurs lasting for several
//! time steps". Only a fraction of communities is active at each step;
//! the rest receive no edges at all.

use crate::growth::preferential_pick;
use glodyne_graph::{DynamicNetwork, GraphBuilder, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// FBW analogue: `C` communities of users; each step a subset of
/// communities is "active" and generates wall posts (intra-community
/// edges with a little cross-community chatter).
pub fn wall_posts(scale: f64, steps: usize, seed: u64) -> DynamicNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n_comm = ((12.0 * scale).round() as usize).max(4);
    let per_comm = ((50.0 * scale) as usize).max(8);
    let n0 = (n_comm * per_comm) as u32;

    let comm_of = |v: u32| (v as usize) / per_comm;
    let mut builder = GraphBuilder::new();
    let mut deg = vec![0u32; n0 as usize];

    // Intra-community backbone + initial posts.
    for c in 0..n_comm {
        let base = (c * per_comm) as u32;
        for i in 1..per_comm as u32 {
            let u = base + rng.gen_range(0..i);
            if builder.add_edge(NodeId(base + i), NodeId(u)) {
                deg[(base + i) as usize] += 1;
                deg[u as usize] += 1;
            }
        }
        for _ in 0..per_comm * 2 {
            let a = base + rng.gen_range(0..per_comm as u32);
            let b = base + rng.gen_range(0..per_comm as u32);
            if a != b && builder.add_edge(NodeId(a), NodeId(b)) {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        }
    }
    // Sparse inter-community ties keep the graph connected.
    for c in 0..n_comm {
        let a = (c * per_comm) as u32;
        let b = (((c + 1) % n_comm) * per_comm) as u32;
        if builder.add_edge(NodeId(a), NodeId(b)) {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
    }

    let mut net = DynamicNetwork::default();
    net.push(builder.snapshot_lcc());

    // Stable activity profile: a third of communities are "hot" and post
    // most steps; the rest wake rarely — that persistence is what creates
    // multi-step inactive sub-networks.
    let hot: Vec<bool> = (0..n_comm).map(|c| c % 3 == 0).collect();
    let mut total_nodes = n0;
    for _ in 1..steps {
        for c in 0..n_comm {
            let active = if hot[c] {
                rng.gen::<f64>() < 0.9
            } else {
                rng.gen::<f64>() < 0.12
            };
            if !active {
                continue;
            }
            let base = (c * per_comm) as u32;
            // a few new members join active communities
            if rng.gen::<f64>() < 0.3 {
                let v = total_nodes;
                total_nodes += 1;
                deg.push(0);
                let u = base + rng.gen_range(0..per_comm as u32);
                if builder.add_edge(NodeId(v), NodeId(u)) {
                    deg[v as usize] += 1;
                    deg[u as usize] += 1;
                }
            }
            // wall posts within the community
            let posts = rng.gen_range(2..=(per_comm / 4).max(3));
            for _ in 0..posts {
                let a = base + rng.gen_range(0..per_comm as u32);
                let b = base + rng.gen_range(0..per_comm as u32);
                if a != b && builder.add_edge(NodeId(a), NodeId(b)) {
                    deg[a as usize] += 1;
                    deg[b as usize] += 1;
                }
            }
            // occasional cross-community post
            if rng.gen::<f64>() < 0.2 {
                let a = base + rng.gen_range(0..per_comm as u32);
                let b = rng.gen_range(0..n0);
                if a != b && comm_of(a) != comm_of(b) && builder.add_edge(NodeId(a), NodeId(b)) {
                    deg[a as usize] += 1;
                    deg[b as usize] += 1;
                }
            }
        }
        net.push(builder.snapshot_lcc());
    }
    net
}

/// Labelled growing SBM used by the Cora and DBLP analogues. Returns the
/// network and a label per node id. `clique_mode` adds co-author-style
/// triangles (DBLP) instead of single citation edges (Cora).
pub fn labelled_sbm(
    scale: f64,
    classes: usize,
    steps: usize,
    clique_mode: bool,
    seed: u64,
) -> (DynamicNetwork, HashMap<NodeId, usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let init_per_class = ((14.0 * scale) as usize).max(4);
    let grow_per_class = ((6.0 * scale) as usize).max(2);
    let p_intra = 0.85;

    let mut labels: HashMap<NodeId, usize> = HashMap::new();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); classes];
    let mut deg: Vec<u32> = Vec::new();
    let mut builder = GraphBuilder::new();
    let mut next_id = 0u32;

    let add_node = |class: usize,
                    builder: &mut GraphBuilder,
                    members: &mut Vec<Vec<u32>>,
                    deg: &mut Vec<u32>,
                    labels: &mut HashMap<NodeId, usize>,
                    next_id: &mut u32,
                    rng: &mut ChaCha8Rng| {
        let v = *next_id;
        *next_id += 1;
        deg.push(0);
        labels.insert(NodeId(v), class);
        // "cite" 1–3 existing works, mostly within the class
        let cites = rng.gen_range(1..=3usize);
        let mut targets: Vec<u32> = Vec::new();
        for _ in 0..cites {
            let target_class = if rng.gen::<f64>() < p_intra || members.iter().all(|m| m.is_empty())
            {
                class
            } else {
                rng.gen_range(0..members.len())
            };
            let pool = if members[target_class].is_empty() {
                // fall back to any non-empty class
                match members.iter().find(|m| !m.is_empty()) {
                    Some(p) => p,
                    None => {
                        members[class].push(v);
                        return;
                    }
                }
            } else {
                &members[target_class]
            };
            // preferential within the pool
            let pool_deg: Vec<u32> = pool.iter().map(|&u| deg[u as usize]).collect();
            let u = pool[preferential_pick(&pool_deg, rng) as usize];
            if u != v && builder.add_edge(NodeId(v), NodeId(u)) {
                deg[v as usize] += 1;
                deg[u as usize] += 1;
                targets.push(u);
            }
        }
        if clique_mode && targets.len() >= 2 {
            // co-authors of the same paper also link to each other
            for i in 0..targets.len() {
                for j in (i + 1)..targets.len() {
                    if builder.add_edge(NodeId(targets[i]), NodeId(targets[j])) {
                        deg[targets[i] as usize] += 1;
                        deg[targets[j] as usize] += 1;
                    }
                }
            }
        }
        members[class].push(v);
    };

    // Initial population.
    for class in 0..classes {
        for _ in 0..init_per_class {
            add_node(
                class,
                &mut builder,
                &mut members,
                &mut deg,
                &mut labels,
                &mut next_id,
                &mut rng,
            );
        }
    }
    // Stitch classes together so the LCC spans them.
    for class in 1..classes {
        let a = members[class - 1][0];
        let b = members[class][0];
        if builder.add_edge(NodeId(a), NodeId(b)) {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
    }

    let mut net = DynamicNetwork::default();
    net.push(builder.snapshot_lcc());
    for _ in 1..steps {
        for class in 0..classes {
            for _ in 0..grow_per_class {
                add_node(
                    class,
                    &mut builder,
                    &mut members,
                    &mut deg,
                    &mut labels,
                    &mut next_id,
                    &mut rng,
                );
            }
        }
        net.push(builder.snapshot_lcc());
    }
    (net, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_posts_have_inactive_communities() {
        // Count communities untouched for >= 3 consecutive steps using
        // true community ids (the experiment binary uses partitions).
        let scale = 0.5;
        let net = wall_posts(scale, 15, 1);
        let per_comm = ((50.0 * scale) as usize).max(8);
        let comm_of = |v: u32| (v as usize) / per_comm;
        let n_comm = ((12.0 * scale).round() as usize).max(4);
        let mut max_quiet = vec![0usize; n_comm];
        let mut quiet = vec![0usize; n_comm];
        for t in 1..net.len() {
            let diff = net.diff_at(t);
            let mut touched = vec![false; n_comm];
            for e in diff.added.iter().chain(diff.removed.iter()) {
                for v in [e.u.0, e.v.0] {
                    let c = comm_of(v);
                    if c < n_comm {
                        touched[c] = true;
                    }
                }
            }
            for c in 0..n_comm {
                if touched[c] {
                    quiet[c] = 0;
                } else {
                    quiet[c] += 1;
                    max_quiet[c] = max_quiet[c].max(quiet[c]);
                }
            }
        }
        let inactive = max_quiet.iter().filter(|&&q| q >= 3).count();
        assert!(
            inactive >= 1,
            "expected inactive communities, max_quiet = {max_quiet:?}"
        );
    }

    #[test]
    fn sbm_labels_cover_all_classes() {
        let (net, labels) = labelled_sbm(0.5, 6, 5, false, 2);
        let last = net.snapshot(net.len() - 1);
        let mut present = vec![false; 6];
        for id in last.node_ids() {
            present[labels[id]] = true;
        }
        assert!(present.iter().all(|&p| p), "classes present: {present:?}");
    }

    #[test]
    fn sbm_is_assortative() {
        // Most edges should join same-class nodes (what makes NC work).
        let (net, labels) = labelled_sbm(0.5, 6, 8, false, 3);
        let last = net.snapshot(net.len() - 1);
        let mut intra = 0usize;
        let mut total = 0usize;
        for e in last.edges() {
            total += 1;
            if labels[&e.u] == labels[&e.v] {
                intra += 1;
            }
        }
        assert!(
            intra as f64 / total as f64 > 0.6,
            "intra fraction {}",
            intra as f64 / total as f64
        );
    }

    #[test]
    fn clique_mode_has_more_triangles() {
        let (cora_net, _) = labelled_sbm(0.5, 5, 6, false, 4);
        let (dblp_net, _) = labelled_sbm(0.5, 5, 6, true, 4);
        let tri = |s: &glodyne_graph::Snapshot| {
            let mut count = 0usize;
            for a in 0..s.num_nodes() {
                let na = s.neighbors(a);
                for &b in na {
                    if (b as usize) < a {
                        continue;
                    }
                    for &c in s.neighbors(b as usize) {
                        if (c as usize) > b as usize && s.has_edge(a, c as usize) {
                            count += 1;
                        }
                    }
                }
            }
            count
        };
        let t_cora = tri(cora_net.snapshot(cora_net.len() - 1));
        let t_dblp = tri(dblp_net.snapshot(dblp_net.len() - 1));
        assert!(
            t_dblp > t_cora,
            "clique mode triangles {t_dblp} <= citation {t_cora}"
        );
    }

    #[test]
    fn networks_only_add_edges() {
        let net = wall_posts(0.4, 8, 5);
        for t in 1..net.len() {
            assert!(net.diff_at(t).removed.is_empty(), "FBW should only add");
        }
    }
}
