//! Additive growth processes (no deletions): Elec, HepPh, Hyperlink.

use glodyne_graph::{DynamicNetwork, GraphBuilder, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Pick a node preferentially by degree (degree + 1 smoothing) from the
/// ids `0..n`. `deg` is indexed by raw node id.
pub(crate) fn preferential_pick(deg: &[u32], rng: &mut impl Rng) -> u32 {
    let total: u64 = deg.iter().map(|&d| d as u64 + 1).sum();
    let mut draw = rng.gen_range(0..total);
    for (i, &d) in deg.iter().enumerate() {
        let w = d as u64 + 1;
        if draw < w {
            return i as u32;
        }
        draw -= w;
    }
    (deg.len() - 1) as u32
}

/// Connect a backbone so the LCC covers (almost) all nodes: each node
/// links to a random earlier node.
pub(crate) fn seed_backbone(
    builder: &mut GraphBuilder,
    n: u32,
    deg: &mut Vec<u32>,
    rng: &mut impl Rng,
) {
    deg.resize(n as usize, 0);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        if builder.add_edge(NodeId(v), NodeId(u)) {
            deg[v as usize] += 1;
            deg[u as usize] += 1;
        }
    }
}

/// Elec analogue: a moderately dense vote network. Additions only; a
/// small stream of new voters plus many new vote edges between existing
/// users each day (the paper's Elec grows by ~100 nodes / 1.6k edges
/// over 21 daily snapshots on a 7k-node base — slow node growth, steady
/// edge growth).
pub fn vote_network(scale: f64, steps: usize, seed: u64) -> DynamicNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n0 = ((400.0 * scale) as u32).max(30);
    let mut builder = GraphBuilder::new();
    let mut deg: Vec<u32> = Vec::new();
    seed_backbone(&mut builder, n0, &mut deg, &mut rng);

    // Densify the initial snapshot: votes concentrate on "candidates"
    // (preferential targets).
    let initial_edges = (n0 as usize) * 6;
    for _ in 0..initial_edges {
        let a = rng.gen_range(0..n0);
        let b = preferential_pick(&deg, &mut rng);
        if a != b && builder.add_edge(NodeId(a), NodeId(b)) {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
    }

    let mut net = DynamicNetwork::default();
    net.push(builder.snapshot_lcc());
    for _ in 1..steps {
        // ~0.3% new voters per day; each casts a few votes.
        let newcomers = ((n0 as f64 * 0.004).ceil() as u32).max(1);
        for _ in 0..newcomers {
            let v = deg.len() as u32;
            deg.push(0);
            let votes = rng.gen_range(1..4);
            for _ in 0..votes {
                let b = preferential_pick(&deg[..v as usize], &mut rng);
                if builder.add_edge(NodeId(v), NodeId(b)) {
                    deg[v as usize] += 1;
                    deg[b as usize] += 1;
                }
            }
        }
        // Existing users vote: ~0.4% of |E| new edges.
        let new_votes = ((builder.num_edges() as f64 * 0.006).ceil() as usize).max(4);
        for _ in 0..new_votes {
            let a = rng.gen_range(0..deg.len() as u32);
            let b = preferential_pick(&deg, &mut rng);
            if a != b && builder.add_edge(NodeId(a), NodeId(b)) {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        }
        net.push(builder.snapshot_lcc());
    }
    net
}

/// HepPh analogue: co-authorship by paper cliques. Each month a batch of
/// "papers" appears; each paper's author list mixes established authors
/// (preferential) and fresh ones, and contributes a clique.
pub fn coauthor_cliques(scale: f64, steps: usize, seed: u64) -> DynamicNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n0 = ((250.0 * scale) as u32).max(24);
    let mut builder = GraphBuilder::new();
    let mut deg: Vec<u32> = Vec::new();
    seed_backbone(&mut builder, n0, &mut deg, &mut rng);

    let publish_batch =
        |builder: &mut GraphBuilder, deg: &mut Vec<u32>, rng: &mut ChaCha8Rng, papers: usize| {
            for _ in 0..papers {
                let team = rng.gen_range(2..=5usize);
                let mut authors: Vec<u32> = Vec::with_capacity(team);
                for _ in 0..team {
                    // 15% chance of a brand-new author.
                    let a = if rng.gen::<f64>() < 0.15 {
                        deg.push(0);
                        (deg.len() - 1) as u32
                    } else {
                        preferential_pick(deg, rng)
                    };
                    if !authors.contains(&a) {
                        authors.push(a);
                    }
                }
                for i in 0..authors.len() {
                    for j in (i + 1)..authors.len() {
                        if builder.add_edge(NodeId(authors[i]), NodeId(authors[j])) {
                            deg[authors[i] as usize] += 1;
                            deg[authors[j] as usize] += 1;
                        }
                    }
                }
            }
        };

    // Dense initial literature.
    publish_batch(&mut builder, &mut deg, &mut rng, (n0 as usize) * 2);
    let mut net = DynamicNetwork::default();
    net.push(builder.snapshot_lcc());
    for _ in 1..steps {
        let papers = ((n0 as f64 * 0.12).ceil() as usize).max(3);
        publish_batch(&mut builder, &mut deg, &mut rng, papers);
        net.push(builder.snapshot_lcc());
    }
    net
}

/// Hyperlink analogue for the scale test: preferential attachment with a
/// larger base and steady daily growth.
pub fn hyperlink(scale: f64, steps: usize, seed: u64) -> DynamicNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n0 = ((2000.0 * scale) as u32).max(100);
    let mut builder = GraphBuilder::new();
    let mut deg: Vec<u32> = Vec::new();
    seed_backbone(&mut builder, n0, &mut deg, &mut rng);
    for _ in 0..(n0 as usize * 8) {
        let a = rng.gen_range(0..n0);
        let b = preferential_pick(&deg, &mut rng);
        if a != b && builder.add_edge(NodeId(a), NodeId(b)) {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
    }
    let mut net = DynamicNetwork::default();
    net.push(builder.snapshot_lcc());
    for _ in 1..steps {
        let new_nodes = ((n0 as f64) * 0.001).ceil() as u32;
        for _ in 0..new_nodes.max(1) {
            let v = deg.len() as u32;
            deg.push(0);
            for _ in 0..3 {
                let b = preferential_pick(&deg[..v as usize], &mut rng);
                if builder.add_edge(NodeId(v), NodeId(b)) {
                    deg[v as usize] += 1;
                    deg[b as usize] += 1;
                }
            }
        }
        let new_links = ((builder.num_edges() as f64) * 0.002).ceil() as usize;
        for _ in 0..new_links {
            let a = rng.gen_range(0..deg.len() as u32);
            let b = preferential_pick(&deg, &mut rng);
            if a != b && builder.add_edge(NodeId(a), NodeId(b)) {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        }
        net.push(builder.snapshot_lcc());
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preferential_pick_prefers_hubs() {
        let deg = vec![100, 0, 0, 0];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let hits = (0..1000)
            .filter(|_| preferential_pick(&deg, &mut rng) == 0)
            .count();
        assert!(hits > 900, "hub hit only {hits}/1000");
    }

    #[test]
    fn vote_network_monotone_growth() {
        let net = vote_network(0.3, 8, 1);
        for t in 1..net.len() {
            assert!(net.snapshot(t).num_edges() >= net.snapshot(t - 1).num_edges());
        }
    }

    #[test]
    fn coauthor_is_dense() {
        let net = coauthor_cliques(0.3, 5, 2);
        let last = net.snapshot(net.len() - 1);
        assert!(
            last.mean_degree() > 4.0,
            "mean degree {}",
            last.mean_degree()
        );
    }

    #[test]
    fn hyperlink_scale_grows() {
        let net = hyperlink(0.1, 3, 3);
        assert!(net.snapshot(0).num_nodes() >= 100);
    }

    #[test]
    fn backbone_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut b = GraphBuilder::new();
        let mut deg = Vec::new();
        seed_backbone(&mut b, 50, &mut deg, &mut rng);
        let s = b.snapshot();
        let (_, k) = glodyne_graph::components::connected_components(&s);
        assert_eq!(k, 1);
    }
}
