//! Property-based tests for the graph substrate.

use glodyne_graph::id::{Edge, NodeId};
use glodyne_graph::{components, diff::SnapshotDiff, Snapshot};
use proptest::prelude::*;

fn arb_edges(max_node: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_node, 0..max_node), 0..max_edges).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect()
    })
}

proptest! {
    /// CSR round-trips the deduplicated canonical edge set.
    #[test]
    fn csr_round_trips_edges(edges in arb_edges(40, 120)) {
        let g = Snapshot::from_edges(&edges, &[]);
        let mut want = edges.clone();
        want.sort_unstable();
        want.dedup();
        let mut got: Vec<Edge> = g.edges().collect();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Handshake lemma: sum of degrees equals twice the edge count.
    #[test]
    fn handshake_lemma(edges in arb_edges(40, 120)) {
        let g = Snapshot::from_edges(&edges, &[]);
        let degsum: usize = (0..g.num_nodes()).map(|i| g.degree(i)).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    /// Component labels cover every node, and every edge joins same-label
    /// endpoints.
    #[test]
    fn components_are_consistent(edges in arb_edges(30, 80)) {
        let g = Snapshot::from_edges(&edges, &[]);
        let (labels, k) = components::connected_components(&g);
        prop_assert_eq!(labels.len(), g.num_nodes());
        for &l in &labels {
            prop_assert!((l as usize) < k);
        }
        for a in 0..g.num_nodes() {
            for &b in g.neighbors(a) {
                prop_assert_eq!(labels[a], labels[b as usize]);
            }
        }
    }

    /// LCC is connected and at least as large as any other component.
    #[test]
    fn lcc_is_largest(edges in arb_edges(30, 60)) {
        let g = Snapshot::from_edges(&edges, &[]);
        let lcc = components::largest_connected_component(&g);
        let (_, k) = components::connected_components(&lcc);
        prop_assert!(k <= 1);
        let (labels, kg) = components::connected_components(&g);
        let mut sizes = vec![0usize; kg];
        for &l in &labels { sizes[l as usize] += 1; }
        let max = sizes.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(lcc.num_nodes(), max);
    }

    /// Diff of a snapshot with itself is empty; diff change counts equal
    /// the neighbour-set symmetric difference (Eq. 3 equivalence).
    #[test]
    fn diff_matches_set_ops(e1 in arb_edges(25, 50), e2 in arb_edges(25, 50)) {
        let a = Snapshot::from_edges(&e1, &[]);
        let b = Snapshot::from_edges(&e2, &[]);
        let d = SnapshotDiff::compute(&a, &b);
        prop_assert!(SnapshotDiff::compute(&a, &a).is_empty());
        let mut all_ids: Vec<NodeId> = a.node_ids().iter().chain(b.node_ids()).copied().collect();
        all_ids.sort_unstable();
        all_ids.dedup();
        for id in all_ids {
            let sa: std::collections::BTreeSet<_> = a.neighbor_ids(id).into_iter().collect();
            let sb: std::collections::BTreeSet<_> = b.neighbor_ids(id).into_iter().collect();
            let sym = sa.symmetric_difference(&sb).count() as u32;
            prop_assert_eq!(d.node_change(id), sym);
        }
    }

    /// Added and removed edge sets are disjoint and correctly oriented.
    #[test]
    fn diff_edge_sets_disjoint(e1 in arb_edges(20, 40), e2 in arb_edges(20, 40)) {
        let a = Snapshot::from_edges(&e1, &[]);
        let b = Snapshot::from_edges(&e2, &[]);
        let d = SnapshotDiff::compute(&a, &b);
        for e in &d.added {
            prop_assert!(b.has_edge_ids(e.u, e.v));
            prop_assert!(!a.has_edge_ids(e.u, e.v));
        }
        for e in &d.removed {
            prop_assert!(a.has_edge_ids(e.u, e.v));
            prop_assert!(!b.has_edge_ids(e.u, e.v));
        }
    }
}
