//! Connected components and largest-connected-component extraction.
//!
//! The paper keeps only the LCC of every snapshot (§5.1.1): "For each
//! snapshot, we take out the largest connected component and treat it as
//! an undirected and unweighted graph."

use crate::id::Edge;
use crate::snapshot::Snapshot;

/// Label each node (by local index) with a component id in `0..k`;
/// returns `(labels, k)`. Iterative BFS — no recursion, safe for large
/// graphs.
pub fn connected_components(g: &Snapshot) -> (Vec<u32>, usize) {
    const UNSEEN: u32 = u32::MAX;
    let n = g.num_nodes();
    let mut label = vec![UNSEEN; n];
    let mut next = 0u32;
    let mut queue: Vec<u32> = Vec::new();
    for start in 0..n {
        if label[start] != UNSEEN {
            continue;
        }
        label[start] = next;
        queue.clear();
        queue.push(start as u32);
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u as usize) {
                if label[v as usize] == UNSEEN {
                    label[v as usize] = next;
                    queue.push(v);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// Extract the largest connected component as a new snapshot, keeping
/// global node ids intact. Ties break toward the lowest component id
/// (deterministic). An empty graph maps to an empty graph.
pub fn largest_connected_component(g: &Snapshot) -> Snapshot {
    if g.num_nodes() == 0 {
        return Snapshot::empty();
    }
    let (label, k) = connected_components(g);
    let mut sizes = vec![0usize; k];
    for &l in &label {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .unwrap();

    let edges: Vec<Edge> = g
        .edges()
        .filter(|e| {
            let lu = g.local_of(e.u).unwrap();
            label[lu] == best
        })
        .collect();
    let singles: Vec<_> = (0..g.num_nodes())
        .filter(|&l| label[l] == best && g.degree(l) == 0)
        .map(|l| g.node_id(l))
        .collect();
    Snapshot::from_edges(&edges, &singles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;

    fn snap(edges: &[(u32, u32)]) -> Snapshot {
        let es: Vec<Edge> = edges
            .iter()
            .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect();
        Snapshot::from_edges(&es, &[])
    }

    #[test]
    fn single_component() {
        let g = snap(&[(0, 1), (1, 2)]);
        let (_, k) = connected_components(&g);
        assert_eq!(k, 1);
    }

    #[test]
    fn multiple_components_counted() {
        let g = snap(&[(0, 1), (2, 3), (4, 5), (5, 6)]);
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3);
        // nodes in the same edge share a label
        let l = |id: u32| labels[g.local_of(NodeId(id)).unwrap()];
        assert_eq!(l(0), l(1));
        assert_eq!(l(4), l(6));
        assert_ne!(l(0), l(2));
    }

    #[test]
    fn lcc_picks_largest() {
        let g = snap(&[(0, 1), (1, 2), (2, 0), (10, 11)]);
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 3);
        assert!(lcc.local_of(NodeId(10)).is_none());
    }

    #[test]
    fn lcc_preserves_global_ids() {
        let g = snap(&[(100, 200), (200, 300), (5, 6)]);
        let lcc = largest_connected_component(&g);
        assert!(lcc.local_of(NodeId(100)).is_some());
        assert!(lcc.local_of(NodeId(300)).is_some());
        assert!(lcc.local_of(NodeId(5)).is_none());
    }

    #[test]
    fn lcc_of_empty_graph() {
        let lcc = largest_connected_component(&Snapshot::empty());
        assert_eq!(lcc.num_nodes(), 0);
    }

    #[test]
    fn lcc_tie_breaks_deterministically() {
        // two components of equal size: lowest component id (discovered
        // first, i.e. containing the smallest local index) wins
        let g = snap(&[(0, 1), (2, 3)]);
        let lcc = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 2);
        assert!(lcc.local_of(NodeId(0)).is_some());
    }
}
