//! Plain-text edge-stream IO.
//!
//! Format: one edge per line, `u v [timestamp]`, whitespace separated,
//! `#`-prefixed comment lines ignored — the format the KONECT/SNAP
//! datasets of §5.1.1 ship in. Timestamps default to 0 when absent.

use crate::id::{NodeId, TimedEdge};
use std::io::{self, BufRead, Write};

/// Parse a timestamped edge stream from a reader.
///
/// Returns an error with line number context on malformed input.
pub fn read_edge_stream<R: BufRead>(reader: R) -> io::Result<Vec<TimedEdge>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> io::Result<u64> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing {what}", lineno + 1),
                )
            })?
            .parse::<u64>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad {what}: {e}", lineno + 1),
                )
            })
        };
        let u = parse(parts.next(), "source node")?;
        let v = parse(parts.next(), "target node")?;
        let t = match parts.next() {
            Some(tok) => tok.parse::<u64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad timestamp: {e}", lineno + 1),
                )
            })?,
            None => 0,
        };
        out.push(TimedEdge::new(NodeId(u as u32), NodeId(v as u32), t));
    }
    Ok(out)
}

/// Write a timestamped edge stream.
pub fn write_edge_stream<W: Write>(writer: &mut W, stream: &[TimedEdge]) -> io::Result<()> {
    for te in stream {
        writeln!(writer, "{} {} {}", te.edge.u.0, te.edge.v.0, te.time)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_basic_stream() {
        let text = "# comment\n0 1 10\n1 2 20\n\n% konect comment\n2 3\n";
        let stream = read_edge_stream(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(stream.len(), 3);
        assert_eq!(stream[0].time, 10);
        assert_eq!(stream[2].time, 0, "missing timestamp defaults to 0");
    }

    #[test]
    fn rejects_malformed_line() {
        let text = "0 x 10\n";
        let err = read_edge_stream(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_missing_target() {
        let text = "42\n";
        let err = read_edge_stream(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("target"));
    }

    #[test]
    fn round_trip() {
        let stream = vec![
            TimedEdge::new(NodeId(5), NodeId(2), 7),
            TimedEdge::new(NodeId(1), NodeId(9), 8),
        ];
        let mut buf = Vec::new();
        write_edge_stream(&mut buf, &stream).unwrap();
        let parsed = read_edge_stream(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, stream);
    }
}
