//! Graph substrate for the GloDyNE reproduction.
//!
//! A dynamic network (Definition 2 in the paper) is a sequence of snapshots
//! `G^0, G^1, ...`; each snapshot is an immutable, undirected, unweighted
//! graph stored in CSR form. Nodes carry a *stable* global [`NodeId`] so
//! that embeddings persist across snapshots even when nodes appear or
//! disappear (as in AS733).
//!
//! Layout of the crate:
//! - [`id`] — stable node identifiers.
//! - [`snapshot`] — the immutable CSR snapshot type.
//! - [`builder`] — incremental edge-set builder producing snapshots.
//! - [`components`] — connected components / largest connected component.
//! - [`traversal`] — BFS shortest paths and all-pairs proximity sums.
//! - [`diff`] — edge-stream differences between consecutive snapshots
//!   (the `ΔE^t` of Eq. 3).
//! - [`dynamic`] — the snapshot-sequence container and stream-cutting
//!   construction described in §5.1.1.
//! - [`state`] — mutable event-driven graph state ([`GraphState`]) for
//!   streaming sessions: apply [`state::GraphEvent`]s, commit cheap
//!   snapshots at epoch boundaries.
//! - [`io`] — plain-text edge-stream reading/writing.

pub mod builder;
pub mod components;
pub mod diff;
pub mod dynamic;
pub mod id;
pub mod io;
pub mod snapshot;
pub mod state;
pub mod traversal;
pub mod weighted;

pub use builder::GraphBuilder;
pub use diff::SnapshotDiff;
pub use dynamic::DynamicNetwork;
pub use id::NodeId;
pub use snapshot::Snapshot;
pub use state::{GraphEvent, GraphEventKind, GraphState};
