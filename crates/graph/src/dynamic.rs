//! Dynamic networks: snapshot sequences and their construction from
//! timestamped edge streams (Definition 2 and §5.1.1).

use crate::builder::GraphBuilder;
use crate::diff::SnapshotDiff;
use crate::id::TimedEdge;
use crate::snapshot::Snapshot;

/// A dynamic network `G = (G^0, G^1, ..., G^T)`.
#[derive(Debug, Clone, Default)]
pub struct DynamicNetwork {
    snapshots: Vec<Snapshot>,
}

impl DynamicNetwork {
    /// Build from an explicit snapshot list.
    pub fn from_snapshots(snapshots: Vec<Snapshot>) -> Self {
        DynamicNetwork { snapshots }
    }

    /// Build from a timestamped edge stream using the paper's recipe
    /// (§5.1.1): snapshot `G^k` contains all edges with
    /// `time <= cutoffs[k]`; every snapshot is reduced to its largest
    /// connected component. Cutoffs must be non-decreasing.
    pub fn from_edge_stream(mut stream: Vec<TimedEdge>, cutoffs: &[u64]) -> Self {
        assert!(
            cutoffs.windows(2).all(|w| w[0] <= w[1]),
            "cutoff timestamps must be non-decreasing"
        );
        stream.sort_by_key(|te| te.time);
        let mut builder = GraphBuilder::new();
        let mut pos = 0usize;
        let mut snapshots = Vec::with_capacity(cutoffs.len());
        for &cut in cutoffs {
            while pos < stream.len() && stream[pos].time <= cut {
                let e = stream[pos].edge;
                builder.add_edge(e.u, e.v);
                pos += 1;
            }
            snapshots.push(builder.snapshot_lcc());
        }
        DynamicNetwork { snapshots }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the network has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Snapshot at time step `t`.
    pub fn snapshot(&self, t: usize) -> &Snapshot {
        &self.snapshots[t]
    }

    /// All snapshots.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Append a snapshot (used by generators that evolve graphs directly,
    /// e.g. the AS733 analogue with node churn).
    pub fn push(&mut self, s: Snapshot) {
        self.snapshots.push(s);
    }

    /// Diff between steps `t-1` and `t`.
    pub fn diff_at(&self, t: usize) -> SnapshotDiff {
        assert!(t >= 1 && t < self.len(), "diff needs 1 <= t < len");
        SnapshotDiff::compute(&self.snapshots[t - 1], &self.snapshots[t])
    }

    /// Total nodes and edges summed over all snapshots — the "# of nodes
    /// / # of edges" rows of Table 4.
    pub fn totals(&self) -> (usize, usize) {
        self.snapshots
            .iter()
            .fold((0, 0), |(n, e), s| (n + s.num_nodes(), e + s.num_edges()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;

    #[test]
    fn edge_stream_cutting() {
        let stream = vec![
            TimedEdge::new(NodeId(0), NodeId(1), 1),
            TimedEdge::new(NodeId(1), NodeId(2), 2),
            TimedEdge::new(NodeId(2), NodeId(3), 5),
        ];
        let net = DynamicNetwork::from_edge_stream(stream, &[1, 2, 10]);
        assert_eq!(net.len(), 3);
        assert_eq!(net.snapshot(0).num_nodes(), 2);
        assert_eq!(net.snapshot(1).num_nodes(), 3);
        assert_eq!(net.snapshot(2).num_nodes(), 4);
    }

    #[test]
    fn snapshots_are_lccs() {
        // At cutoff 1 the stream has two disconnected edges; the LCC rule
        // keeps only one of them.
        let stream = vec![
            TimedEdge::new(NodeId(0), NodeId(1), 0),
            TimedEdge::new(NodeId(5), NodeId(6), 0),
            TimedEdge::new(NodeId(1), NodeId(5), 2),
        ];
        let net = DynamicNetwork::from_edge_stream(stream, &[1, 2]);
        assert_eq!(net.snapshot(0).num_nodes(), 2);
        assert_eq!(net.snapshot(1).num_nodes(), 4);
    }

    #[test]
    fn unsorted_stream_is_sorted_internally() {
        let stream = vec![
            TimedEdge::new(NodeId(2), NodeId(3), 9),
            TimedEdge::new(NodeId(0), NodeId(1), 1),
        ];
        let net = DynamicNetwork::from_edge_stream(stream, &[1, 9]);
        assert_eq!(net.snapshot(0).num_edges(), 1);
        assert_eq!(net.snapshot(1).num_edges(), 1); // LCC keeps one edge of two disconnected
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_cutoffs_panic() {
        DynamicNetwork::from_edge_stream(vec![], &[5, 1]);
    }

    #[test]
    fn totals_sum_over_snapshots() {
        let stream = vec![
            TimedEdge::new(NodeId(0), NodeId(1), 0),
            TimedEdge::new(NodeId(1), NodeId(2), 1),
        ];
        let net = DynamicNetwork::from_edge_stream(stream, &[0, 1]);
        let (n, e) = net.totals();
        assert_eq!(n, 2 + 3);
        assert_eq!(e, 1 + 2);
    }

    #[test]
    fn diff_at_consecutive() {
        let stream = vec![
            TimedEdge::new(NodeId(0), NodeId(1), 0),
            TimedEdge::new(NodeId(1), NodeId(2), 1),
        ];
        let net = DynamicNetwork::from_edge_stream(stream, &[0, 1]);
        let d = net.diff_at(1);
        assert_eq!(d.added.len(), 1);
        assert!(d.removed.is_empty());
    }
}
