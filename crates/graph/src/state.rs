//! Incremental graph state for event streams.
//!
//! The batch pipeline re-cuts every snapshot from the full edge stream
//! (`DynamicNetwork::from_edge_stream`). A streaming session instead
//! keeps one mutable [`GraphState`], applies [`GraphEvent`]s as they
//! arrive, and takes a cheap [`GraphState::commit`] at each epoch
//! boundary — O(current graph) per snapshot instead of O(total stream),
//! with the produced [`Snapshot`]s identical to the batch recipe over
//! the same edge set.

use crate::components::largest_connected_component;
use crate::id::{Edge, NodeId, TimedEdge};
use crate::snapshot::Snapshot;
use std::collections::{BTreeMap, BTreeSet};

/// What happened to the graph (the payload of a [`GraphEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphEventKind {
    /// An undirected edge appeared (self-loops are ignored on apply).
    AddEdge(Edge),
    /// An undirected edge disappeared.
    RemoveEdge(Edge),
    /// A node left the network along with all incident edges (AS733's
    /// router churn).
    RemoveNode(NodeId),
}

/// A timestamped mutation of the dynamic network — the event-stream
/// generalisation of the paper's add-only `(v_i, v_j, timestamp)`
/// records (§5.1.1), extended with removals for churning networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEvent {
    /// What changed.
    pub kind: GraphEventKind,
    /// Arbitrary monotone timestamp (same clock as [`TimedEdge`]).
    pub time: u64,
}

impl GraphEvent {
    /// An edge-addition event.
    pub fn add_edge(a: NodeId, b: NodeId, time: u64) -> Self {
        GraphEvent {
            kind: GraphEventKind::AddEdge(Edge::new(a, b)),
            time,
        }
    }

    /// An edge-removal event.
    pub fn remove_edge(a: NodeId, b: NodeId, time: u64) -> Self {
        GraphEvent {
            kind: GraphEventKind::RemoveEdge(Edge::new(a, b)),
            time,
        }
    }

    /// A node-removal event.
    pub fn remove_node(n: NodeId, time: u64) -> Self {
        GraphEvent {
            kind: GraphEventKind::RemoveNode(n),
            time,
        }
    }
}

impl From<TimedEdge> for GraphEvent {
    /// A timed edge from the add-only stream format is an addition.
    fn from(te: TimedEdge) -> Self {
        GraphEvent {
            kind: GraphEventKind::AddEdge(te.edge),
            time: te.time,
        }
    }
}

/// Mutable adjacency keyed by stable [`NodeId`], built up from
/// [`GraphEvent`]s and committed to immutable [`Snapshot`]s at epoch
/// boundaries.
///
/// Nodes exist exactly while they have at least one incident edge (the
/// same node-set rule as `GraphBuilder` and `Snapshot::from_edges`), so
/// a commit after any event sequence equals a batch build over the
/// surviving edge set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphState {
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
    num_edges: usize,
}

impl GraphState {
    /// New empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one event; returns whether the graph actually changed
    /// (duplicate additions, missing removals, and self-loops don't).
    pub fn apply(&mut self, event: &GraphEvent) -> bool {
        match event.kind {
            GraphEventKind::AddEdge(e) => self.add_edge(e.u, e.v),
            GraphEventKind::RemoveEdge(e) => self.remove_edge(e.u, e.v),
            GraphEventKind::RemoveNode(n) => self.remove_node(n) > 0,
        }
    }

    /// Insert an undirected edge; returns true if it was new. Self-loops
    /// are ignored.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let new = self.adj.entry(a).or_default().insert(b);
        if new {
            self.adj.entry(b).or_default().insert(a);
            self.num_edges += 1;
        }
        new
    }

    /// Remove an undirected edge; returns true if it was present.
    /// Endpoints left with no edges leave the node set.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = match self.adj.get_mut(&a) {
            Some(ns) => ns.remove(&b),
            None => false,
        };
        if removed {
            if self.adj[&a].is_empty() {
                self.adj.remove(&a);
            }
            let bn = self.adj.get_mut(&b).expect("symmetric adjacency");
            bn.remove(&a);
            if bn.is_empty() {
                self.adj.remove(&b);
            }
            self.num_edges -= 1;
        }
        removed
    }

    /// Remove a node and all incident edges; returns the number of edges
    /// removed.
    pub fn remove_node(&mut self, n: NodeId) -> usize {
        let Some(neighbors) = self.adj.remove(&n) else {
            return 0;
        };
        let removed = neighbors.len();
        for m in neighbors {
            let mn = self.adj.get_mut(&m).expect("symmetric adjacency");
            mn.remove(&n);
            if mn.is_empty() {
                self.adj.remove(&m);
            }
        }
        self.num_edges -= removed;
        removed
    }

    /// Whether the undirected edge is currently present.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.get(&a).is_some_and(|ns| ns.contains(&b))
    }

    /// Whether the node currently exists (has at least one edge).
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.adj.contains_key(&n)
    }

    /// Iterate current node ids in sorted order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Iterate `n`'s current neighbours in sorted order (empty for an
    /// absent node).
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.get(&n).into_iter().flatten().copied()
    }

    /// Current number of nodes (nodes with at least one edge).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Current number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Commit the current state to an immutable snapshot.
    ///
    /// One pass over the (sorted, deduplicated) adjacency — no re-sort,
    /// no re-scan of the historical stream. The result is identical to
    /// `Snapshot::from_edges` over the current edge set.
    pub fn commit(&self) -> Snapshot {
        Snapshot::from_sorted_adjacency(&self.adj)
    }

    /// Commit restricted to the largest connected component, as the
    /// paper does for every dataset snapshot (§5.1.1).
    pub fn commit_lcc(&self) -> Snapshot {
        largest_connected_component(&self.commit())
    }

    /// Iterate current edges as canonical pairs in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().flat_map(|(&u, ns)| {
            ns.iter()
                .filter(move |&&v| v > u)
                .map(move |&v| Edge::new(u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut s = GraphState::new();
        assert!(s.add_edge(NodeId(0), NodeId(1)));
        assert!(!s.add_edge(NodeId(1), NodeId(0)), "duplicate either order");
        assert!(!s.add_edge(NodeId(2), NodeId(2)), "self-loop ignored");
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.num_nodes(), 2);
        assert!(s.remove_edge(NodeId(0), NodeId(1)));
        assert!(!s.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(s.num_nodes(), 0, "edgeless endpoints leave the node set");
    }

    #[test]
    fn remove_node_strips_incident_edges() {
        let mut s = GraphState::new();
        s.add_edge(NodeId(0), NodeId(1));
        s.add_edge(NodeId(0), NodeId(2));
        s.add_edge(NodeId(1), NodeId(2));
        assert_eq!(s.remove_node(NodeId(0)), 2);
        assert_eq!(s.num_edges(), 1);
        assert!(s.contains_edge(NodeId(1), NodeId(2)));
        assert_eq!(s.remove_node(NodeId(9)), 0);
    }

    #[test]
    fn events_apply() {
        let mut s = GraphState::new();
        assert!(s.apply(&GraphEvent::add_edge(NodeId(0), NodeId(1), 5)));
        assert!(s.apply(&GraphEvent::add_edge(NodeId(1), NodeId(2), 6)));
        assert!(!s.apply(&GraphEvent::add_edge(NodeId(0), NodeId(1), 7)));
        assert!(s.apply(&GraphEvent::remove_edge(NodeId(0), NodeId(1), 8)));
        assert!(s.apply(&GraphEvent::remove_node(NodeId(2), 9)));
        assert_eq!(s.num_edges(), 0);
        let ev: GraphEvent = TimedEdge::new(NodeId(4), NodeId(5), 10).into();
        assert!(s.apply(&ev));
        assert!(s.contains_edge(NodeId(4), NodeId(5)));
    }

    #[test]
    fn commit_matches_batch_build() {
        use crate::builder::GraphBuilder;
        let pairs = [(3u32, 1u32), (1, 0), (3, 0), (7, 3), (5, 6)];
        let mut state = GraphState::new();
        let mut builder = GraphBuilder::new();
        for &(a, b) in &pairs {
            state.add_edge(NodeId(a), NodeId(b));
            builder.add_edge(NodeId(a), NodeId(b));
        }
        let fast = state.commit();
        let batch = builder.snapshot();
        assert_eq!(fast.node_ids(), batch.node_ids());
        let fe: Vec<Edge> = fast.edges().collect();
        let be: Vec<Edge> = batch.edges().collect();
        assert_eq!(fe, be);
        for l in 0..fast.num_nodes() {
            assert_eq!(fast.neighbors(l), batch.neighbors(l), "node {l}");
        }

        // And the LCC commit matches the batch LCC rule.
        let fast_lcc = state.commit_lcc();
        let batch_lcc = builder.snapshot_lcc();
        assert_eq!(fast_lcc.node_ids(), batch_lcc.node_ids());
        assert_eq!(fast_lcc.num_edges(), batch_lcc.num_edges());
    }

    #[test]
    fn commit_after_removals_matches_batch_build() {
        let mut state = GraphState::new();
        let mut builder = crate::builder::GraphBuilder::new();
        for &(a, b) in &[(0u32, 1u32), (1, 2), (2, 3), (3, 0), (1, 3)] {
            state.add_edge(NodeId(a), NodeId(b));
            builder.add_edge(NodeId(a), NodeId(b));
        }
        state.remove_edge(NodeId(1), NodeId(3));
        builder.remove_edge(NodeId(1), NodeId(3));
        state.remove_node(NodeId(0));
        builder.remove_node(NodeId(0));
        let fast = state.commit();
        let batch = builder.snapshot();
        assert_eq!(fast.node_ids(), batch.node_ids());
        assert_eq!(
            fast.edges().collect::<Vec<_>>(),
            batch.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn edges_iterator_is_sorted_and_canonical() {
        let mut s = GraphState::new();
        s.add_edge(NodeId(5), NodeId(1));
        s.add_edge(NodeId(2), NodeId(1));
        let edges: Vec<Edge> = s.edges().collect();
        assert_eq!(
            edges,
            vec![
                Edge::new(NodeId(1), NodeId(2)),
                Edge::new(NodeId(1), NodeId(5))
            ]
        );
    }

    #[test]
    fn node_and_neighbor_accessors() {
        let mut s = GraphState::new();
        s.add_edge(NodeId(3), NodeId(1));
        s.add_edge(NodeId(3), NodeId(5));
        assert!(s.contains_node(NodeId(3)));
        assert!(!s.contains_node(NodeId(9)));
        assert_eq!(
            s.nodes().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(3), NodeId(5)]
        );
        assert_eq!(
            s.neighbors(NodeId(3)).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(5)]
        );
        assert_eq!(s.neighbors(NodeId(9)).count(), 0);

        // Same event history => equal states; diverging => unequal.
        let mut t = s.clone();
        assert_eq!(s, t);
        t.add_edge(NodeId(1), NodeId(5));
        assert_ne!(s, t);
    }

    #[test]
    fn empty_commit() {
        let s = GraphState::new();
        assert_eq!(s.commit().num_nodes(), 0);
        assert_eq!(s.commit_lcc().num_nodes(), 0);
    }
}
