//! Edge-stream differences between consecutive snapshots.
//!
//! Algorithm 1 line 9: "read edge streams ΔE^t (or obtain it by
//! differences between G^{t-1} and G^t if not given)". Eq. 3 needs, per
//! node, `|ΔE^t_i| = |N(v^t_i) ∪ N(v^{t-1}_i) − N(v^t_i) ∩ N(v^{t-1}_i)|`
//! — the symmetric difference of its neighbour sets across the step.

use crate::id::{Edge, NodeId};
use crate::snapshot::Snapshot;
use std::collections::HashMap;

/// The difference between two consecutive snapshots.
#[derive(Debug, Clone, Default)]
pub struct SnapshotDiff {
    /// Edges present in `curr` but not `prev`.
    pub added: Vec<Edge>,
    /// Edges present in `prev` but not `curr`.
    pub removed: Vec<Edge>,
    /// Per-node symmetric-difference count `|ΔE^t_i|`, keyed by global id.
    /// Only nodes with a non-zero count appear.
    pub changed_degree: HashMap<NodeId, u32>,
}

impl SnapshotDiff {
    /// Compute the diff between `prev` (`G^{t-1}`) and `curr` (`G^t`).
    ///
    /// Both added and removed edges contribute to `changed_degree` on both
    /// endpoints, exactly matching the set-operation form of Eq. 3 for an
    /// unweighted network. Sorted-merge over neighbour lists keeps the
    /// cost at O(Σ deg).
    pub fn compute(prev: &Snapshot, curr: &Snapshot) -> Self {
        let mut diff = SnapshotDiff::default();
        // Edges of prev: removed if absent from curr.
        for e in prev.edges() {
            if !curr.has_edge_ids(e.u, e.v) {
                diff.removed.push(e);
            }
        }
        // Edges of curr: added if absent from prev.
        for e in curr.edges() {
            if !prev.has_edge_ids(e.u, e.v) {
                diff.added.push(e);
            }
        }
        for e in diff.added.iter().chain(diff.removed.iter()) {
            *diff.changed_degree.entry(e.u).or_insert(0) += 1;
            *diff.changed_degree.entry(e.v).or_insert(0) += 1;
        }
        diff
    }

    /// `|ΔE^t|`: total number of changed edges.
    pub fn num_changed_edges(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// `|ΔE^t_i|` for a node (0 for untouched nodes).
    pub fn node_change(&self, id: NodeId) -> u32 {
        self.changed_degree.get(&id).copied().unwrap_or(0)
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(edges: &[(u32, u32)]) -> Snapshot {
        let es: Vec<Edge> = edges
            .iter()
            .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect();
        Snapshot::from_edges(&es, &[])
    }

    #[test]
    fn detects_added_and_removed() {
        let prev = snap(&[(0, 1), (1, 2)]);
        let curr = snap(&[(1, 2), (2, 3)]);
        let d = SnapshotDiff::compute(&prev, &curr);
        assert_eq!(d.added, vec![Edge::new(NodeId(2), NodeId(3))]);
        assert_eq!(d.removed, vec![Edge::new(NodeId(0), NodeId(1))]);
        assert_eq!(d.num_changed_edges(), 2);
    }

    #[test]
    fn per_node_change_counts() {
        let prev = snap(&[(0, 1), (1, 2)]);
        let curr = snap(&[(1, 2), (2, 3), (2, 4)]);
        let d = SnapshotDiff::compute(&prev, &curr);
        // node 2 gains edges to 3 and 4 => |ΔE_2| = 2
        assert_eq!(d.node_change(NodeId(2)), 2);
        // node 0 lost its only edge => 1
        assert_eq!(d.node_change(NodeId(0)), 1);
        // node 1 lost (0,1) => 1
        assert_eq!(d.node_change(NodeId(1)), 1);
        // untouched / new leaf nodes
        assert_eq!(d.node_change(NodeId(3)), 1);
        assert_eq!(d.node_change(NodeId(9)), 0);
    }

    #[test]
    fn identical_snapshots_empty_diff() {
        let g = snap(&[(0, 1), (1, 2), (0, 2)]);
        let d = SnapshotDiff::compute(&g, &g);
        assert!(d.is_empty());
        assert!(d.changed_degree.is_empty());
    }

    #[test]
    fn node_change_equals_neighbor_symmetric_difference() {
        // Direct check of the Eq. 3 equivalence on a random-ish case.
        let prev = snap(&[(0, 1), (0, 2), (0, 3), (4, 5)]);
        let curr = snap(&[(0, 2), (0, 3), (0, 6), (4, 5), (1, 4)]);
        let d = SnapshotDiff::compute(&prev, &curr);
        for &id in &[0u32, 1, 2, 3, 4, 5, 6] {
            let n_prev: std::collections::BTreeSet<_> =
                prev.neighbor_ids(NodeId(id)).into_iter().collect();
            let n_curr: std::collections::BTreeSet<_> =
                curr.neighbor_ids(NodeId(id)).into_iter().collect();
            let sym = n_prev.symmetric_difference(&n_curr).count() as u32;
            assert_eq!(d.node_change(NodeId(id)), sym, "node {id}");
        }
    }
}
