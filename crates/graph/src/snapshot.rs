//! The immutable CSR snapshot type (Definition 1: a static network).

use crate::id::{Edge, NodeId};
use std::collections::HashMap;

/// An immutable, undirected, unweighted graph snapshot in CSR form.
///
/// Nodes are addressed two ways:
/// - a **global** stable [`NodeId`] (persists across snapshots),
/// - a **local** dense index `0..num_nodes()` (valid for this snapshot
///   only), used for array-backed per-node state.
///
/// Neighbour lists are sorted by local index, enabling O(log d) edge
/// queries and O(d1 + d2) sorted-merge set operations between snapshots.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Sorted global ids; position = local index.
    node_ids: Vec<NodeId>,
    /// Reverse map global id -> local index.
    index_of: HashMap<NodeId, u32>,
    /// CSR offsets, length num_nodes + 1.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour lists (local indices).
    neighbors: Vec<u32>,
}

impl Snapshot {
    /// Build a snapshot from a set of canonical undirected edges.
    ///
    /// Duplicates and self-loops are removed. The node set is exactly the
    /// set of edge endpoints plus `extra_nodes` (isolated nodes are legal:
    /// the paper's snapshots keep only the LCC, but intermediate
    /// structures may not).
    pub fn from_edges(edges: &[Edge], extra_nodes: &[NodeId]) -> Self {
        let mut ids: Vec<NodeId> = edges
            .iter()
            .filter(|e| !e.is_loop())
            .flat_map(|e| [e.u, e.v])
            .chain(extra_nodes.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();

        let index_of: HashMap<NodeId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();

        let n = ids.len();
        let mut deg = vec![0u32; n];
        let mut clean: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        {
            let mut sorted: Vec<Edge> = edges.iter().filter(|e| !e.is_loop()).copied().collect();
            sorted.sort_unstable();
            sorted.dedup();
            for e in sorted {
                let a = index_of[&e.u];
                let b = index_of[&e.v];
                deg[a as usize] += 1;
                deg[b as usize] += 1;
                clean.push((a, b));
            }
        }

        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut neighbors = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for (a, b) in clean {
            neighbors[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        for i in 0..n {
            neighbors[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }

        Snapshot {
            node_ids: ids,
            index_of,
            offsets,
            neighbors,
        }
    }

    /// An empty snapshot.
    pub fn empty() -> Self {
        Snapshot::from_edges(&[], &[])
    }

    /// Fast path for [`crate::state::GraphState::commit`]: build directly
    /// from an already-sorted, already-deduplicated adjacency map.
    ///
    /// Because node ids arrive sorted (`BTreeMap` key order) and each
    /// neighbour set is sorted (`BTreeSet` order), the CSR arrays can be
    /// filled in one pass with no re-sorting — the snapshot produced is
    /// identical to `from_edges` over the same edge set.
    pub(crate) fn from_sorted_adjacency(
        adj: &std::collections::BTreeMap<NodeId, std::collections::BTreeSet<NodeId>>,
    ) -> Self {
        let node_ids: Vec<NodeId> = adj.keys().copied().collect();
        let index_of: HashMap<NodeId, u32> = node_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        let n = node_ids.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let total: usize = adj.values().map(|ns| ns.len()).sum();
        let mut neighbors = Vec::with_capacity(total);
        for ns in adj.values() {
            // Sorted NodeId order maps monotonically to sorted local
            // indices, so each neighbour run is already CSR-ordered.
            neighbors.extend(ns.iter().map(|id| index_of[id]));
            offsets.push(neighbors.len() as u32);
        }
        Snapshot {
            node_ids,
            index_of,
            offsets,
            neighbors,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of a node by local index.
    #[inline]
    pub fn degree(&self, local: usize) -> usize {
        (self.offsets[local + 1] - self.offsets[local]) as usize
    }

    /// Sorted neighbour list (local indices) of a node by local index.
    #[inline]
    pub fn neighbors(&self, local: usize) -> &[u32] {
        &self.neighbors[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }

    /// Global id of a local index.
    #[inline]
    pub fn node_id(&self, local: usize) -> NodeId {
        self.node_ids[local]
    }

    /// All global ids, sorted, position = local index.
    #[inline]
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Local index of a global id, if present in this snapshot.
    #[inline]
    pub fn local_of(&self, id: NodeId) -> Option<usize> {
        self.index_of.get(&id).map(|&i| i as usize)
    }

    /// Whether an undirected edge exists (by local indices).
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Whether an undirected edge exists between two global ids.
    pub fn has_edge_ids(&self, a: NodeId, b: NodeId) -> bool {
        match (self.local_of(a), self.local_of(b)) {
            (Some(x), Some(y)) => self.has_edge(x, y),
            _ => false,
        }
    }

    /// Iterate all undirected edges as canonical global-id pairs.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes()).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .filter(move |&&b| (b as usize) > a)
                .map(move |&b| Edge::new(self.node_id(a), self.node_id(b as usize)))
        })
    }

    /// Neighbour global ids of a *global* id; empty if the node is absent.
    pub fn neighbor_ids(&self, id: NodeId) -> Vec<NodeId> {
        match self.local_of(id) {
            Some(l) => self
                .neighbors(l)
                .iter()
                .map(|&n| self.node_id(n as usize))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Mean degree `2|E| / |V|` (the `b1` of §4.3).
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Snapshot {
        let edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge::new(NodeId(i), NodeId(i + 1)))
            .collect();
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn builds_csr_counts() {
        let g = path_graph(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric() {
        let edges = vec![
            Edge::new(NodeId(3), NodeId(1)),
            Edge::new(NodeId(1), NodeId(0)),
            Edge::new(NodeId(3), NodeId(0)),
        ];
        let g = Snapshot::from_edges(&edges, &[]);
        for a in 0..g.num_nodes() {
            let ns = g.neighbors(a);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &b in ns {
                assert!(g.has_edge(b as usize, a), "symmetric");
            }
        }
    }

    #[test]
    fn dedup_and_loops_removed() {
        let edges = vec![
            Edge::new(NodeId(0), NodeId(1)),
            Edge::new(NodeId(1), NodeId(0)),
            Edge::new(NodeId(2), NodeId(2)),
        ];
        let g = Snapshot::from_edges(&edges, &[]);
        assert_eq!(g.num_edges(), 1);
        // node 2 only appeared in a self-loop, so it is absent entirely
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn extra_isolated_nodes() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[NodeId(9)]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.degree(g.local_of(NodeId(9)).unwrap()), 0);
    }

    #[test]
    fn global_local_round_trip() {
        let g = Snapshot::from_edges(
            &[
                Edge::new(NodeId(10), NodeId(20)),
                Edge::new(NodeId(20), NodeId(30)),
            ],
            &[],
        );
        for l in 0..g.num_nodes() {
            assert_eq!(g.local_of(g.node_id(l)), Some(l));
        }
        assert_eq!(g.local_of(NodeId(999)), None);
    }

    #[test]
    fn edge_queries_by_id() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(1), NodeId(2))], &[]);
        assert!(g.has_edge_ids(NodeId(1), NodeId(2)));
        assert!(g.has_edge_ids(NodeId(2), NodeId(1)));
        assert!(!g.has_edge_ids(NodeId(1), NodeId(3)));
    }

    #[test]
    fn edges_iterator_round_trips() {
        let edges = vec![
            Edge::new(NodeId(0), NodeId(1)),
            Edge::new(NodeId(1), NodeId(2)),
            Edge::new(NodeId(0), NodeId(2)),
        ];
        let g = Snapshot::from_edges(&edges, &[]);
        let mut out: Vec<Edge> = g.edges().collect();
        out.sort_unstable();
        let mut want = edges.clone();
        want.sort_unstable();
        assert_eq!(out, want);
    }

    #[test]
    fn mean_degree() {
        let g = path_graph(5);
        assert!((g.mean_degree() - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(Snapshot::empty().mean_degree(), 0.0);
    }
}
