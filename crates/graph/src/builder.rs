//! Incremental edge-set builder.
//!
//! Datasets arrive as timestamped edge streams; snapshots are produced by
//! "appending all edges no later than the cut-off timestamp" (§5.1.1).
//! `GraphBuilder` is the mutable accumulator that supports that process,
//! including edge deletions for churning networks like AS733.

use crate::id::{Edge, NodeId};
use crate::snapshot::Snapshot;
use std::collections::BTreeSet;

/// A mutable set of undirected edges from which snapshots are taken.
///
/// Backed by a `BTreeSet<Edge>` so that snapshot construction sees a
/// deterministic, sorted edge order regardless of insertion order.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: BTreeSet<Edge>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an undirected edge; returns true if it was new.
    /// Self-loops are ignored (returns false).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        self.edges.insert(Edge::new(a, b))
    }

    /// Remove an undirected edge; returns true if it was present.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.edges.remove(&Edge::new(a, b))
    }

    /// Remove a node and all incident edges; returns the number of edges
    /// removed. O(|E|) — deletions are rare relative to snapshot builds.
    pub fn remove_node(&mut self, n: NodeId) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| e.u != n && e.v != n);
        before - self.edges.len()
    }

    /// Whether the edge is currently present.
    pub fn contains(&self, a: NodeId, b: NodeId) -> bool {
        self.edges.contains(&Edge::new(a, b))
    }

    /// Current number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Snapshot of the current edge set.
    pub fn snapshot(&self) -> Snapshot {
        let edges: Vec<Edge> = self.edges.iter().copied().collect();
        Snapshot::from_edges(&edges, &[])
    }

    /// Snapshot restricted to the largest connected component, as the
    /// paper does for every dataset snapshot (§5.1.1).
    pub fn snapshot_lcc(&self) -> Snapshot {
        crate::components::largest_connected_component(&self.snapshot())
    }

    /// Iterate current edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }
}

impl FromIterator<Edge> for GraphBuilder {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        let mut b = GraphBuilder::new();
        for e in iter {
            if !e.is_loop() {
                b.edges.insert(e);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_edge() {
        let mut b = GraphBuilder::new();
        assert!(b.add_edge(NodeId(0), NodeId(1)));
        assert!(
            !b.add_edge(NodeId(1), NodeId(0)),
            "duplicate in either order"
        );
        assert_eq!(b.num_edges(), 1);
        assert!(b.remove_edge(NodeId(0), NodeId(1)));
        assert!(!b.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new();
        assert!(!b.add_edge(NodeId(3), NodeId(3)));
        assert_eq!(b.num_edges(), 0);
    }

    #[test]
    fn remove_node_strips_incident_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(2));
        assert_eq!(b.remove_node(NodeId(0)), 2);
        assert_eq!(b.num_edges(), 1);
        assert!(b.contains(NodeId(1), NodeId(2)));
    }

    #[test]
    fn snapshot_reflects_current_state() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let s = b.snapshot();
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    fn snapshot_lcc_keeps_biggest_part() {
        let mut b = GraphBuilder::new();
        // triangle (3 nodes) + single edge (2 nodes)
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(10), NodeId(11));
        let s = b.snapshot_lcc();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 3);
    }

    #[test]
    fn from_iterator_filters_loops() {
        let b: GraphBuilder = vec![
            Edge::new(NodeId(0), NodeId(1)),
            Edge::new(NodeId(2), NodeId(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.num_edges(), 1);
    }
}
