//! Stable node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable, global node identifier.
///
/// Snapshots of a dynamic network gain and lose nodes over time; a
/// `NodeId` names the *entity* (a router, a user, an author) rather than a
/// position in any particular snapshot. Embedding stores are keyed by
/// `NodeId`, which is what lets the incremental learning paradigm
/// (Eq. 11) carry vectors across time steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node id exceeds u32 range"))
    }
}

/// An undirected edge between two stable node ids.
///
/// Stored in canonical (min, max) order so that edge sets and streams can
/// be deduplicated with plain sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Create a canonical undirected edge. Self-loops are permitted at
    /// this level; builders reject them.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The endpoint opposite to `n`, or `None` if `n` is not an endpoint.
    #[inline]
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if self.u == n {
            Some(self.v)
        } else if self.v == n {
            Some(self.u)
        } else {
            None
        }
    }

    /// Whether the edge is a self-loop.
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.u == self.v
    }
}

/// A timestamped undirected edge, the unit of the edge-stream
/// representation `{(v_i, v_j, timestamp), ...}` used by the datasets in
/// §5.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEdge {
    /// The undirected edge.
    pub edge: Edge,
    /// Arbitrary monotone timestamp (seconds, days — datasets decide).
    pub time: u64,
}

impl TimedEdge {
    /// Construct a timestamped canonical edge.
    pub fn new(a: NodeId, b: NodeId, time: u64) -> Self {
        TimedEdge {
            edge: Edge::new(a, b),
            time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::new(NodeId(5), NodeId(2));
        let e2 = Edge::new(NodeId(2), NodeId(5));
        assert_eq!(e1, e2);
        assert_eq!(e1.u, NodeId(2));
        assert_eq!(e1.v, NodeId(5));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(NodeId(1), NodeId(9));
        assert_eq!(e.other(NodeId(1)), Some(NodeId(9)));
        assert_eq!(e.other(NodeId(9)), Some(NodeId(1)));
        assert_eq!(e.other(NodeId(3)), None);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(NodeId(4), NodeId(4)).is_loop());
        assert!(!Edge::new(NodeId(4), NodeId(5)).is_loop());
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "v7");
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId::from(7usize), NodeId(7));
    }

    #[test]
    fn timed_edge_canonicalizes() {
        let te = TimedEdge::new(NodeId(9), NodeId(3), 42);
        assert_eq!(te.edge.u, NodeId(3));
        assert_eq!(te.time, 42);
    }
}
