//! Shortest-path traversal.
//!
//! Figure 1 b–c of the paper measures `Δsp_all = Σ_ij |sp_ij(G^t) −
//! sp_ij(G^{t+1})|`, the total modification of pairwise proximity (defined
//! as shortest-path length) caused by the edge changes between two
//! consecutive snapshots. Snapshots are unweighted, so BFS is the
//! Dijkstra of the paper; a binary-heap Dijkstra is provided for the
//! weighted generalisation mentioned in footnote 3.

use crate::snapshot::Snapshot;
use std::collections::VecDeque;

/// Distance value for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances (in hops) over local indices.
pub fn bfs_distances(g: &Snapshot, source: usize) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut q = VecDeque::new();
    dist[source] = 0;
    q.push_back(source as u32);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u as usize) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Single-source Dijkstra over local indices with per-edge weight `w`.
/// Weights must be non-negative; returns `f64::INFINITY` for unreachable.
pub fn dijkstra_distances(
    g: &Snapshot,
    source: usize,
    w: impl Fn(usize, usize) -> f64,
) -> Vec<f64> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Item(f64, u32);
    impl Eq for Item {}
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> Ordering {
            // min-heap by distance
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Item(0.0, source as u32));
    while let Some(Item(d, u)) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &v in g.neighbors(u as usize) {
            let nd = d + w(u as usize, v as usize);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Item(nd, v));
            }
        }
    }
    dist
}

/// The Figure-1 proximity-modification statistic between two snapshots:
///
/// `Δsp_all = Σ_{i,j ∈ common nodes} |sp_ij(a) − sp_ij(b)|`
///
/// computed over node pairs present in *both* snapshots and reachable in
/// both (pairs unreachable in either are skipped — the paper computes on
/// LCCs where everything is reachable). Ordered pairs are counted once
/// (i < j). Cost is O(|V| · (|V| + |E|)); intended for the small
/// Figure-1 analysis, not the embedding path.
pub fn proximity_modification(a: &Snapshot, b: &Snapshot) -> u64 {
    // Common nodes by global id.
    let common: Vec<(usize, usize)> = a
        .node_ids()
        .iter()
        .filter_map(|&id| Some((a.local_of(id)?, b.local_of(id)?)))
        .collect();
    let mut total = 0u64;
    for (k, &(la, lb)) in common.iter().enumerate() {
        let da = bfs_distances(a, la);
        let db = bfs_distances(b, lb);
        for &(ma, mb) in &common[k + 1..] {
            let x = da[ma];
            let y = db[mb];
            if x != UNREACHABLE && y != UNREACHABLE {
                total += x.abs_diff(y) as u64;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{Edge, NodeId};

    fn snap(edges: &[(u32, u32)]) -> Snapshot {
        let es: Vec<Edge> = edges
            .iter()
            .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect();
        Snapshot::from_edges(&es, &[])
    }

    #[test]
    fn bfs_on_path() {
        let g = snap(&[(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, g.local_of(NodeId(0)).unwrap());
        assert_eq!(d[g.local_of(NodeId(3)).unwrap()], 3);
        assert_eq!(d[g.local_of(NodeId(0)).unwrap()], 0);
    }

    #[test]
    fn bfs_unreachable() {
        let g = snap(&[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, g.local_of(NodeId(0)).unwrap());
        assert_eq!(d[g.local_of(NodeId(2)).unwrap()], UNREACHABLE);
    }

    #[test]
    fn dijkstra_matches_bfs_for_unit_weights() {
        let g = snap(&[(0, 1), (1, 2), (0, 3), (3, 2)]);
        let s = g.local_of(NodeId(0)).unwrap();
        let bfs = bfs_distances(&g, s);
        let dij = dijkstra_distances(&g, s, |_, _| 1.0);
        for i in 0..g.num_nodes() {
            assert_eq!(bfs[i] as f64, dij[i]);
        }
    }

    #[test]
    fn dijkstra_prefers_lighter_path() {
        // 0-1-2 (weights 1,1) vs direct 0-2 (weight 5)
        let g = snap(&[(0, 1), (1, 2), (0, 2)]);
        let l = |id: u32| g.local_of(NodeId(id)).unwrap();
        let d = dijkstra_distances(&g, l(0), |a, b| {
            if (a == l(0) && b == l(2)) || (a == l(2) && b == l(0)) {
                5.0
            } else {
                1.0
            }
        });
        assert_eq!(d[l(2)], 2.0);
    }

    #[test]
    fn figure1_toy_example() {
        // The paper's Figure 1a: path 1-2-3-4-5-6; adding edge (1,6)
        // shrinks every cross pair's proximity dramatically.
        let before = snap(&[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let after = snap(&[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (1, 6)]);
        let delta = proximity_modification(&before, &after);
        // pairs whose distance changes: (1,4):3->3? path: before d(1,4)=3,
        // after min(3, 1+2)=3 — compute explicitly instead of hand-waving:
        // before distances from 1: [0,1,2,3,4,5]; after: [0,1,2,3,2,1]
        // so (1,5): 4->2 (Δ2), (1,6): 5->1 (Δ4), (2,6): 4->2 (Δ2),
        // (3,6): 3->3 (Δ0)... total must be > 0 and equal to 2+4+2+2(2,5?)...
        assert!(delta > 0);
        // a no-change pair of snapshots yields zero
        assert_eq!(proximity_modification(&before, &before), 0);
    }

    #[test]
    fn proximity_modification_symmetricish() {
        let a = snap(&[(0, 1), (1, 2)]);
        let b = snap(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(
            proximity_modification(&a, &b),
            proximity_modification(&b, &a)
        );
    }
}
