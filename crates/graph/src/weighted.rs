//! Weighted snapshots — the generalisation of footnote 3 and Eq. 5.
//!
//! The paper's experiments treat every snapshot as unweighted, but both
//! the change score (footnote 3) and the walk transition probability
//! (Eq. 5) are defined for weighted networks:
//!
//! - `|ΔE^t_i| = Σ_{j ∈ N(v^t_i)} |w^t_ij − w^{t−1}_ij| +
//!    Σ_{j ∈ N(v^{t−1}_i) − N(v^t_i)} |w^{t−1}_ij|`
//! - `P(v_j | v_i) = w_ij / Σ_{j'} w_ij'`
//!
//! [`WeightedSnapshot`] carries per-edge weights parallel to the CSR
//! neighbour arrays; [`weighted_node_change`] implements the footnote-3
//! score; weighted walks live in `glodyne-embed`.

use crate::id::NodeId;
use crate::snapshot::Snapshot;
use std::collections::HashMap;

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Positive weight.
    pub w: f64,
}

impl WeightedEdge {
    /// Canonical weighted edge (panics on non-positive weight).
    pub fn new(a: NodeId, b: NodeId, w: f64) -> Self {
        assert!(w > 0.0, "edge weight must be positive, got {w}");
        if a <= b {
            WeightedEdge { u: a, v: b, w }
        } else {
            WeightedEdge { u: b, v: a, w }
        }
    }
}

/// A weighted snapshot: a [`Snapshot`] plus per-neighbour weights stored
/// in the same order as the CSR neighbour arrays.
#[derive(Debug, Clone)]
pub struct WeightedSnapshot {
    topology: Snapshot,
    /// Weight parallel to `topology`'s concatenated neighbour list.
    weights: Vec<f64>,
}

impl WeightedSnapshot {
    /// Build from weighted edges. Duplicate edges keep the **sum** of
    /// their weights (parallel interactions accumulate, e.g. repeated
    /// wall posts); self-loops are dropped.
    pub fn from_edges(edges: &[WeightedEdge]) -> Self {
        let mut weight_of: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        for e in edges {
            if e.u != e.v {
                *weight_of.entry((e.u, e.v)).or_insert(0.0) += e.w;
            }
        }
        let plain: Vec<crate::id::Edge> = weight_of
            .keys()
            .map(|&(u, v)| crate::id::Edge::new(u, v))
            .collect();
        let topology = Snapshot::from_edges(&plain, &[]);
        let mut weights = Vec::new();
        for a in 0..topology.num_nodes() {
            let ida = topology.node_id(a);
            for &b in topology.neighbors(a) {
                let idb = topology.node_id(b as usize);
                let key = if ida <= idb { (ida, idb) } else { (idb, ida) };
                weights.push(weight_of[&key]);
            }
        }
        WeightedSnapshot { topology, weights }
    }

    /// The underlying unweighted topology.
    pub fn topology(&self) -> &Snapshot {
        &self.topology
    }

    /// Neighbour weights of a node (parallel to
    /// `topology().neighbors(local)`).
    pub fn neighbor_weights(&self, local: usize) -> &[f64] {
        let n = self.topology.num_nodes();
        debug_assert!(local < n);
        // Reconstruct offsets from the topology's degree structure.
        let start: usize = (0..local).map(|l| self.topology.degree(l)).sum();
        &self.weights[start..start + self.topology.degree(local)]
    }

    /// Weight of the edge between two global ids (0 when absent).
    pub fn weight_ids(&self, a: NodeId, b: NodeId) -> f64 {
        let (Some(la), Some(lb)) = (self.topology.local_of(a), self.topology.local_of(b)) else {
            return 0.0;
        };
        match self.topology.neighbors(la).binary_search(&(lb as u32)) {
            Ok(pos) => self.neighbor_weights(la)[pos],
            Err(_) => 0.0,
        }
    }

    /// Weighted degree (strength) of a node.
    pub fn strength(&self, local: usize) -> f64 {
        self.neighbor_weights(local).iter().sum()
    }
}

/// Footnote 3: the weighted per-node change between two consecutive
/// weighted snapshots:
///
/// `|ΔE^t_i| = Σ_{j ∈ N(v^t_i)} |w^t_ij − w^{t−1}_ij|
///           + Σ_{j ∈ N(v^{t−1}_i) − N(v^t_i)} |w^{t−1}_ij|`
///
/// (the first term covers current neighbours — including brand-new ones,
/// whose previous weight is 0; the second covers vanished neighbours).
pub fn weighted_node_change(prev: &WeightedSnapshot, curr: &WeightedSnapshot, id: NodeId) -> f64 {
    let mut total = 0.0;
    if let Some(lc) = curr.topology().local_of(id) {
        let t = curr.topology();
        for (pos, &nb) in t.neighbors(lc).iter().enumerate() {
            let nid = t.node_id(nb as usize);
            let w_now = curr.neighbor_weights(lc)[pos];
            let w_before = prev.weight_ids(id, nid);
            total += (w_now - w_before).abs();
        }
    }
    if let Some(lp) = prev.topology().local_of(id) {
        let t = prev.topology();
        for (pos, &nb) in t.neighbors(lp).iter().enumerate() {
            let nid = t.node_id(nb as usize);
            // neighbour no longer connected at t (vanished edge)
            if curr.weight_ids(id, nid) == 0.0 {
                total += prev.neighbor_weights(lp)[pos].abs();
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(edges: &[(u32, u32, f64)]) -> WeightedSnapshot {
        let es: Vec<WeightedEdge> = edges
            .iter()
            .map(|&(a, b, w)| WeightedEdge::new(NodeId(a), NodeId(b), w))
            .collect();
        WeightedSnapshot::from_edges(&es)
    }

    #[test]
    fn weights_round_trip() {
        let g = ws(&[(0, 1, 2.5), (1, 2, 0.5)]);
        assert_eq!(g.weight_ids(NodeId(0), NodeId(1)), 2.5);
        assert_eq!(g.weight_ids(NodeId(1), NodeId(0)), 2.5);
        assert_eq!(g.weight_ids(NodeId(0), NodeId(2)), 0.0);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let g = ws(&[(0, 1, 1.0), (1, 0, 2.0)]);
        assert_eq!(g.weight_ids(NodeId(0), NodeId(1)), 3.0);
        assert_eq!(g.topology().num_edges(), 1);
    }

    #[test]
    fn strength_sums_weights() {
        let g = ws(&[(0, 1, 2.0), (0, 2, 3.0)]);
        let l0 = g.topology().local_of(NodeId(0)).unwrap();
        assert_eq!(g.strength(l0), 5.0);
    }

    #[test]
    fn neighbor_weights_parallel_to_neighbors() {
        let g = ws(&[(5, 1, 1.0), (5, 3, 2.0), (5, 9, 3.0)]);
        let l5 = g.topology().local_of(NodeId(5)).unwrap();
        let ns = g.topology().neighbors(l5);
        let wsl = g.neighbor_weights(l5);
        assert_eq!(ns.len(), wsl.len());
        for (pos, &nb) in ns.iter().enumerate() {
            let nid = g.topology().node_id(nb as usize);
            assert_eq!(g.weight_ids(NodeId(5), nid), wsl[pos]);
        }
    }

    #[test]
    fn footnote3_weight_changes() {
        // prev: (0,1,w=2), (0,2,w=1); curr: (0,1,w=3), (0,3,w=4)
        let prev = ws(&[(0, 1, 2.0), (0, 2, 1.0)]);
        let curr = ws(&[(0, 1, 3.0), (0, 3, 4.0)]);
        // |3-2| (changed) + |4-0| (new) + |1| (vanished neighbour 2) = 6
        let change = weighted_node_change(&prev, &curr, NodeId(0));
        assert!((change - 6.0).abs() < 1e-12, "got {change}");
    }

    #[test]
    fn footnote3_zero_for_identical() {
        let a = ws(&[(0, 1, 2.0), (1, 2, 1.0)]);
        for id in [0u32, 1, 2] {
            assert_eq!(weighted_node_change(&a, &a, NodeId(id)), 0.0);
        }
    }

    #[test]
    fn footnote3_reduces_to_unweighted_count() {
        // With all weights 1, the weighted change equals the symmetric
        // difference of neighbour sets (the unweighted Eq. 3).
        let prev = ws(&[(0, 1, 1.0), (0, 2, 1.0)]);
        let curr = ws(&[(0, 2, 1.0), (0, 3, 1.0)]);
        let change = weighted_node_change(&prev, &curr, NodeId(0));
        assert_eq!(change, 2.0); // lost 1, gained 3
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        WeightedEdge::new(NodeId(0), NodeId(1), 0.0);
    }
}
