//! BCGD: scalable temporal latent space inference (Zhu et al., TKDE
//! 2016) — the paper's \[9\].
//!
//! Objective (their Eq. 3): non-negative latent positions `Z_t` minimise
//!
//! ```text
//! Σ_t ‖A_t − Z_t Z_tᵀ‖_F² + λ Σ_t Σ_i ‖z_i^t − z_i^{t−1}‖²
//! ```
//!
//! optimised by block-coordinate gradient descent with projection onto
//! the non-negative orthant. Two published variants:
//!
//! - **BCGDg** (algorithm 2, "global"): keeps *all* historical snapshots
//!   and jointly, cyclically re-optimises every `Z_t` whenever a new
//!   snapshot arrives — the most expensive method in Table 4.
//! - **BCGDl** (algorithm 4, "local"): optimises only the current `Z_t`,
//!   initialised from and regularised toward `Z_{t−1}`.
//!
//! The gradient avoids materialising `Z Zᵀ` (|V|² entries): with
//! `G = ZᵀZ` (a `d×d` matrix), `∇ = 4(Z G − A Z) + 2λ(Z − Z_prev)`,
//! giving O(|V|d² + |E|d) per sweep.
//!
//! Simplifications vs the original release: uniform (unweighted) loss
//! over all node pairs instead of their locality-weighted variant, and a
//! fixed step size with non-negativity projection instead of their
//! exact line search.

use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{DynamicEmbedder, PhaseTimes, StepContext, StepReport};
use glodyne_embed::Embedding;
use glodyne_graph::{NodeId, Snapshot};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;

/// Shared BCGD hyper-parameters.
#[derive(Debug, Clone)]
pub struct BcgdConfig {
    /// Latent dimensionality `d`.
    pub dim: usize,
    /// Temporal-smoothness weight λ.
    pub lambda: f32,
    /// Gradient steps per snapshot visit.
    pub iterations: usize,
    /// Step size.
    pub learning_rate: f32,
    /// Global sweeps over history per new snapshot (BCGDg only).
    pub global_cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BcgdConfig {
    fn default() -> Self {
        BcgdConfig {
            dim: 128,
            lambda: 0.2,
            iterations: 12,
            learning_rate: 5e-3,
            global_cycles: 2,
            seed: 0,
        }
    }
}

impl BcgdConfig {
    /// Validate the hyper-parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dim < 1 {
            return Err(ConfigError::new("dim", "must be >= 1"));
        }
        if self.iterations < 1 {
            return Err(ConfigError::new("iterations", "must be >= 1"));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(ConfigError::new(
                "learning_rate",
                format!(
                    "must be a positive finite number, got {}",
                    self.learning_rate
                ),
            ));
        }
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(ConfigError::new(
                "lambda",
                format!("must be a non-negative finite number, got {}", self.lambda),
            ));
        }
        if self.global_cycles < 1 {
            return Err(ConfigError::new("global_cycles", "must be >= 1"));
        }
        Ok(())
    }
}

/// A [`StepReport`] for a full-graph gradient method: the whole step is
/// the training phase; every current node's position is updated.
fn dense_report(start: Instant, updated_nodes: usize, samples: usize) -> StepReport {
    StepReport {
        phases: PhaseTimes {
            train: start.elapsed(),
            ..PhaseTimes::default()
        },
        selected: updated_nodes,
        trained_pairs: samples,
        corpus_tokens: 0,
        dirty_rows: 0,
    }
}

/// Latent positions for one snapshot, keyed like the snapshot's local
/// indices.
struct LatentBlock {
    ids: Vec<NodeId>,
    z: Vec<f32>, // n × d row-major, non-negative
}

impl LatentBlock {
    fn new(
        snapshot: &Snapshot,
        dim: usize,
        warm: Option<&LatentBlock>,
        rng: &mut impl Rng,
    ) -> Self {
        let n = snapshot.num_nodes();
        let mut z = vec![0.0f32; n * dim];
        let warm_index: Option<HashMap<NodeId, usize>> =
            warm.map(|w| w.ids.iter().enumerate().map(|(i, &id)| (id, i)).collect());
        let scale = (1.0 / dim as f32).sqrt();
        for l in 0..n {
            let id = snapshot.node_id(l);
            let row = &mut z[l * dim..(l + 1) * dim];
            match warm_index.as_ref().and_then(|wi| wi.get(&id)) {
                Some(&w_l) => {
                    let w = warm.unwrap();
                    row.copy_from_slice(&w.z[w_l * dim..(w_l + 1) * dim]);
                }
                None => {
                    for x in row.iter_mut() {
                        *x = rng.gen_range(0.0..scale);
                    }
                }
            }
        }
        LatentBlock {
            ids: snapshot.node_ids().to_vec(),
            z,
        }
    }

    fn embedding(&self, dim: usize) -> Embedding {
        let mut e = Embedding::new(dim);
        for (l, &id) in self.ids.iter().enumerate() {
            e.set(id, &self.z[l * dim..(l + 1) * dim]);
        }
        e
    }
}

/// One block-coordinate gradient sweep on `Z` for snapshot `g`, with a
/// temporal anchor (rows matched by id) weighted λ.
fn gradient_sweep(
    z: &mut [f32],
    g: &Snapshot,
    dim: usize,
    anchor: Option<(&HashMap<NodeId, usize>, &[f32])>,
    lambda: f32,
    lr: f32,
    iterations: usize,
) {
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    let mut gram = vec![0.0f32; dim * dim];
    let mut az = vec![0.0f32; n * dim];
    for _ in 0..iterations {
        // G = ZᵀZ
        gram.iter_mut().for_each(|x| *x = 0.0);
        for l in 0..n {
            let row = &z[l * dim..(l + 1) * dim];
            for a in 0..dim {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                let gr = &mut gram[a * dim..(a + 1) * dim];
                for (b, &rb) in row.iter().enumerate() {
                    gr[b] += ra * rb;
                }
            }
        }
        // AZ via edges (A is 0/1 symmetric).
        az.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            for &v in g.neighbors(u) {
                let (urow, vrow) = (u * dim, v as usize * dim);
                for k in 0..dim {
                    az[urow + k] += z[vrow + k];
                }
            }
        }
        // Update: Z -= lr * (4(Z G − A Z) + 2λ(Z − anchor)); project >= 0.
        for l in 0..n {
            let base = l * dim;
            let anchor_row: Option<&[f32]> = anchor.and_then(|(index, prev_z)| {
                index
                    .get(&g.node_id(l))
                    .map(|&pl| &prev_z[pl * dim..(pl + 1) * dim])
            });
            let mut zg = vec![0.0f32; dim];
            for a in 0..dim {
                let za = z[base + a];
                if za == 0.0 {
                    continue;
                }
                let gr = &gram[a * dim..(a + 1) * dim];
                for b in 0..dim {
                    zg[b] += za * gr[b];
                }
            }
            for k in 0..dim {
                let mut grad = 4.0 * (zg[k] - az[base + k]);
                if let Some(arow) = anchor_row {
                    grad += 2.0 * lambda * (z[base + k] - arow[k]);
                }
                z[base + k] = (z[base + k] - lr * grad).max(0.0);
            }
        }
    }
}

/// BCGD-local: one latent block, warm-started and anchored to the
/// previous step.
pub struct BcgdLocal {
    cfg: BcgdConfig,
    rng: ChaCha8Rng,
    current: Option<LatentBlock>,
}

impl BcgdLocal {
    /// Build with a validated configuration.
    pub fn new(cfg: BcgdConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xBC6D);
        Ok(BcgdLocal {
            cfg,
            rng,
            current: None,
        })
    }
}

impl DynamicEmbedder for BcgdLocal {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let start = Instant::now();
        let curr = ctx.curr;
        let dim = self.cfg.dim;
        let warm = self.current.take();
        let mut block = LatentBlock::new(curr, dim, warm.as_ref(), &mut self.rng);
        let anchor_index: Option<HashMap<NodeId, usize>> = warm
            .as_ref()
            .map(|w| w.ids.iter().enumerate().map(|(i, &id)| (id, i)).collect());
        let anchor = warm
            .as_ref()
            .zip(anchor_index.as_ref())
            .map(|(w, idx)| (idx, w.z.as_slice()));
        gradient_sweep(
            &mut block.z,
            curr,
            dim,
            anchor,
            self.cfg.lambda,
            self.cfg.learning_rate,
            self.cfg.iterations,
        );
        self.current = Some(block);
        dense_report(
            start,
            curr.num_nodes(),
            curr.num_nodes() * self.cfg.iterations,
        )
    }

    fn embedding(&self) -> Embedding {
        self.current
            .as_ref()
            .map(|b| b.embedding(self.cfg.dim))
            .unwrap_or_else(|| Embedding::new(self.cfg.dim))
    }

    fn name(&self) -> &'static str {
        "BCGDl"
    }
}

/// BCGD-global: retains all snapshots and cyclically re-optimises every
/// time step's latent block on each arrival.
pub struct BcgdGlobal {
    cfg: BcgdConfig,
    rng: ChaCha8Rng,
    history: Vec<Snapshot>,
    blocks: Vec<LatentBlock>,
}

impl BcgdGlobal {
    /// Build with a validated configuration.
    pub fn new(cfg: BcgdConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x00BC_6D61);
        Ok(BcgdGlobal {
            cfg,
            rng,
            history: Vec::new(),
            blocks: Vec::new(),
        })
    }
}

impl DynamicEmbedder for BcgdGlobal {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let start = Instant::now();
        let curr = ctx.curr;
        let dim = self.cfg.dim;
        let warm = self.blocks.last();
        let block = LatentBlock::new(curr, dim, warm, &mut self.rng);
        self.history.push(curr.clone());
        self.blocks.push(block);

        // Joint cyclic optimisation over all time steps: each block is
        // anchored to its temporal predecessor (and successor through the
        // next cycle's visit of that block).
        for _ in 0..self.cfg.global_cycles {
            for t in 0..self.blocks.len() {
                let (before, rest) = self.blocks.split_at_mut(t);
                let block = &mut rest[0];
                let anchor_index: Option<HashMap<NodeId, usize>> = before
                    .last()
                    .map(|w| w.ids.iter().enumerate().map(|(i, &id)| (id, i)).collect());
                let anchor = before
                    .last()
                    .zip(anchor_index.as_ref())
                    .map(|(w, idx)| (idx, w.z.as_slice()));
                gradient_sweep(
                    &mut block.z,
                    &self.history[t],
                    dim,
                    anchor,
                    self.cfg.lambda,
                    self.cfg.learning_rate,
                    self.cfg.iterations,
                );
            }
        }
        // Every historical block's nodes get re-optimised each arrival.
        let updated: usize = self.blocks.iter().map(|b| b.ids.len()).sum();
        dense_report(start, updated, updated * self.cfg.iterations)
    }

    fn embedding(&self) -> Embedding {
        self.blocks
            .last()
            .map(|b| b.embedding(self.cfg.dim))
            .unwrap_or_else(|| Embedding::new(self.cfg.dim))
    }

    fn name(&self) -> &'static str {
        "BCGDg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::{run_over, step_with};
    use glodyne_graph::id::Edge;

    fn two_cliques() -> Snapshot {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(6)));
        Snapshot::from_edges(&edges, &[])
    }

    fn cfg() -> BcgdConfig {
        BcgdConfig {
            dim: 8,
            iterations: 40,
            learning_rate: 1e-2,
            ..Default::default()
        }
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(BcgdLocal::new(BcgdConfig {
            dim: 0,
            ..Default::default()
        })
        .is_err());
        assert!(BcgdGlobal::new(BcgdConfig {
            learning_rate: f32::NAN,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn local_embeds_all_nodes_nonnegatively() {
        let g = two_cliques();
        let mut m = BcgdLocal::new(cfg()).unwrap();
        let report = step_with(&mut m, None, &g);
        assert_eq!(report.selected, 12);
        assert!(report.total_time() > std::time::Duration::ZERO);
        let e = m.embedding();
        assert_eq!(e.len(), 12);
        for (_, v) in e.iter() {
            assert!(v.iter().all(|&x| x >= 0.0), "non-negativity violated");
        }
    }

    #[test]
    fn reconstruction_separates_cliques() {
        let g = two_cliques();
        let mut m = BcgdLocal::new(cfg()).unwrap();
        step_with(&mut m, None, &g);
        let e = m.embedding();
        let intra = e.cosine(NodeId(1), NodeId(2)).unwrap();
        let inter = e.cosine(NodeId(1), NodeId(8)).unwrap();
        assert!(intra > inter, "intra {intra} <= inter {inter}");
    }

    #[test]
    fn local_warm_start_limits_drift() {
        let g = two_cliques();
        let mut m = BcgdLocal::new(cfg()).unwrap();
        step_with(&mut m, None, &g);
        let e0 = m.embedding();
        step_with(&mut m, Some(&g), &g); // identical snapshot
        let e1 = m.embedding();
        let drift: f32 = e0
            .iter()
            .map(|(id, v)| {
                v.iter()
                    .zip(e1.get(id).unwrap())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f32>()
            })
            .sum();
        assert!(
            drift < 2.0,
            "identical snapshot should barely move Z: {drift}"
        );
    }

    #[test]
    fn global_keeps_history_and_runs() {
        let g0 = two_cliques();
        let mut edges: Vec<Edge> = g0.edges().collect();
        edges.push(Edge::new(NodeId(2), NodeId(9)));
        let g1 = Snapshot::from_edges(&edges, &[]);
        let mut m = BcgdGlobal::new(BcgdConfig {
            global_cycles: 1,
            iterations: 10,
            ..cfg()
        })
        .unwrap();
        let embs = run_over(&mut m, &[g0, g1]);
        assert_eq!(embs.len(), 2);
        assert_eq!(embs[1].len(), 12);
    }

    #[test]
    fn handles_node_churn() {
        let g0 = two_cliques();
        // drop node 11, add node 20
        let edges: Vec<Edge> = g0
            .edges()
            .filter(|e| e.u != NodeId(11) && e.v != NodeId(11))
            .chain([Edge::new(NodeId(6), NodeId(20))])
            .collect();
        let g1 = Snapshot::from_edges(&edges, &[]);
        let mut m = BcgdLocal::new(cfg()).unwrap();
        let embs = run_over(&mut m, &[g0, g1]);
        assert!(embs[1].get(NodeId(20)).is_some());
        assert!(embs[1].get(NodeId(11)).is_none());
    }
}
