//! Re-implementations of the six comparator DNE methods of §5.1.2.
//!
//! Each module re-implements the *published objective* of one baseline
//! (the paper compares methods, not codebases); the module docs state
//! the objective and every simplification made relative to the original
//! release. All methods implement
//! [`glodyne_embed::DynamicEmbedder`], so the experiment harness treats
//! them identically to GloDyNE.
//!
//! | Module | Method | Core objective |
//! |---|---|---|
//! | [`bcgd`]     | BCGDg / BCGDl | non-negative temporal latent space `min Σ_t ‖A_t − Z_t Z_tᵀ‖² + λ Σ ‖z_i^t − z_i^{t−1}‖²` via block-coordinate gradient descent |
//! | [`dyngem`]   | DynGEM        | warm-started deep auto-encoder reconstructing adjacency rows |
//! | [`dynline`]  | DynLINE       | LINE edge-sampling objective, incrementally updating only the most-affected nodes |
//! | [`dyntriad`] | DynTriad      | edge likelihood + triadic-closure + temporal-smoothness SGD |
//! | [`tne`]      | tNE           | per-snapshot static SGNS + RNN over each node's embedding history, trained with a link-prediction loss |
//!
//! `capabilities` records which methods cannot handle node deletions —
//! the reason DynLINE and tNE are "n/a" on AS733 in the paper's tables.

pub mod bcgd;
pub mod dyngem;
pub mod dynline;
pub mod dyntriad;
pub mod tne;

pub use bcgd::{BcgdGlobal, BcgdLocal};
pub use dyngem::DynGem;
pub use dynline::DynLine;
pub use dyntriad::DynTriad;
pub use tne::TNE;

/// Whether a method (by table-row name) supports node deletions.
/// DynLINE and tNE cannot ("The n/a values for DynLINE and tNE on AS733
/// are due to the inability of handling node deletions", §5.2).
pub fn supports_node_deletions(method_name: &str) -> bool {
    !matches!(method_name, "DynLINE" | "tNE")
}

#[cfg(test)]
mod tests {
    #[test]
    fn deletion_capability_matches_paper() {
        assert!(!super::supports_node_deletions("DynLINE"));
        assert!(!super::supports_node_deletions("tNE"));
        assert!(super::supports_node_deletions("GloDyNE"));
        assert!(super::supports_node_deletions("BCGDg"));
        assert!(super::supports_node_deletions("DynGEM"));
    }
}
