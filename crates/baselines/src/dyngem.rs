//! DynGEM (Goyal et al., 2017) — the paper's \[11\].
//!
//! "DynGEM continuously trains the adaptive auto-encoder model based on
//! the existing edges in a current snapshot", initialising each step's
//! model from the previous one. The original is an SDNE-style deep
//! auto-encoder with first/second-order losses and a net-widening
//! heuristic (PropSize).
//!
//! Simplifications here: a fixed-capacity input layer (node slots are
//! assigned once and reused, standing in for PropSize), a single hidden
//! layer on each side, and the second-order loss only (reconstruct the
//! β-reweighted adjacency row); β-reweighting of non-zero entries is
//! kept since it is what makes sparse rows learnable. These preserve the
//! behaviours the paper measures: warm-started convergence and
//! embeddings that reconstruct local neighbourhoods.

use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{DynamicEmbedder, PhaseTimes, StepContext, StepReport};
use glodyne_embed::Embedding;
use glodyne_graph::{NodeId, Snapshot};
use glodyne_linalg::mlp::Mlp;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;

/// DynGEM hyper-parameters.
#[derive(Debug, Clone)]
pub struct DynGemConfig {
    /// Embedding dimensionality `d` (encoder output width).
    pub dim: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Maximum number of node slots (input width). Nodes beyond
    /// capacity are rejected with a panic — mirrors the original's
    /// GPU-memory failure mode on large graphs (n/a cells of Table 1).
    pub capacity: usize,
    /// Weight β applied to reconstructing *observed* edges (>1
    /// penalises missing a real neighbour more than inventing one).
    pub beta: f64,
    /// Training epochs per snapshot.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynGemConfig {
    fn default() -> Self {
        DynGemConfig {
            dim: 128,
            hidden: 256,
            capacity: 2048,
            beta: 8.0,
            epochs: 6,
            learning_rate: 0.1,
            seed: 0,
        }
    }
}

impl DynGemConfig {
    /// Validate the hyper-parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dim < 1 {
            return Err(ConfigError::new("dim", "must be >= 1"));
        }
        if self.hidden < 1 {
            return Err(ConfigError::new("hidden", "must be >= 1"));
        }
        if self.capacity < 1 {
            return Err(ConfigError::new("capacity", "must be >= 1"));
        }
        if self.epochs < 1 {
            return Err(ConfigError::new("epochs", "must be >= 1"));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(ConfigError::new(
                "learning_rate",
                format!(
                    "must be a positive finite number, got {}",
                    self.learning_rate
                ),
            ));
        }
        if !(self.beta.is_finite() && self.beta > 0.0) {
            return Err(ConfigError::new(
                "beta",
                format!("must be a positive finite number, got {}", self.beta),
            ));
        }
        Ok(())
    }
}

/// The DynGEM embedder.
pub struct DynGem {
    cfg: DynGemConfig,
    /// Persistent node → input-slot assignment.
    slots: HashMap<NodeId, usize>,
    net: Mlp,
    rng: ChaCha8Rng,
    /// Nodes of the latest snapshot (embedding is emitted for these).
    latest: Vec<NodeId>,
    /// Latest snapshot's neighbour slots per node (for encoding after
    /// training without holding the snapshot itself).
    neighbor_cache: HashMap<NodeId, Vec<usize>>,
}

impl DynGem {
    /// Build with a validated configuration.
    pub fn new(cfg: DynGemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xD9E6);
        let net = Mlp::new(
            &[cfg.capacity, cfg.hidden, cfg.dim, cfg.hidden, cfg.capacity],
            &mut rng,
        );
        Ok(DynGem {
            cfg,
            slots: HashMap::new(),
            net,
            rng,
            latest: Vec::new(),
            neighbor_cache: HashMap::new(),
        })
    }

    fn slot_of(&mut self, id: NodeId) -> usize {
        let next = self.slots.len();
        let cap = self.cfg.capacity;
        *self.slots.entry(id).or_insert_with(|| {
            assert!(
                next < cap,
                "DynGEM capacity exhausted ({cap} slots) — the original runs out of GPU memory here"
            );
            next
        })
    }

    /// β-weighted adjacency row of a node in slot space.
    fn adjacency_row(&mut self, g: &Snapshot, local: usize) -> (Vec<f64>, Vec<f64>) {
        let mut row = vec![0.0; self.cfg.capacity];
        let mut weight = vec![1.0; self.cfg.capacity];
        let neighbor_slots: Vec<usize> = g
            .neighbors(local)
            .iter()
            .map(|&u| self.slot_of(g.node_id(u as usize)))
            .collect();
        for s in neighbor_slots {
            row[s] = 1.0;
            weight[s] = self.cfg.beta;
        }
        (row, weight)
    }

    fn encode(&self, row: &[f64]) -> Vec<f32> {
        // Encoder = first two layers.
        let h1 = self.net.layers[0].forward(row);
        let code = self.net.layers[1].forward(&h1);
        code.iter().map(|&x| x as f32).collect()
    }
}

impl DynamicEmbedder for DynGem {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let start = Instant::now();
        let curr = ctx.curr;
        // Assign slots up front (stable ordering) and cache neighbours.
        self.neighbor_cache.clear();
        for l in 0..curr.num_nodes() {
            let id = curr.node_id(l);
            self.slot_of(id);
            let slots: Vec<usize> = curr
                .neighbors(l)
                .iter()
                .map(|&u| curr.node_id(u as usize))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|nid| self.slot_of(nid))
                .collect();
            self.neighbor_cache.insert(id, slots);
        }
        let mut order: Vec<usize> = (0..curr.num_nodes()).collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut self.rng);
            for &l in &order {
                let (row, weight) = self.adjacency_row(curr, l);
                self.net
                    .train_step(&row, &row, Some(&weight), self.cfg.learning_rate);
            }
        }
        self.latest = curr.node_ids().to_vec();
        StepReport {
            phases: PhaseTimes {
                train: start.elapsed(),
                ..PhaseTimes::default()
            },
            selected: curr.num_nodes(),
            trained_pairs: curr.num_nodes() * self.cfg.epochs,
            corpus_tokens: 0,
            dirty_rows: 0,
        }
    }

    fn embedding(&self) -> Embedding {
        let mut e = Embedding::new(self.cfg.dim);
        for &id in &self.latest {
            e.set(id, &self.encode(&self.adjacency_row_of(id)));
        }
        e
    }

    fn name(&self) -> &'static str {
        "DynGEM"
    }
}

impl DynGem {
    /// Adjacency row of `id` as of the latest snapshot, rebuilt from the
    /// neighbour-slot cache recorded during `advance`.
    fn adjacency_row_of(&self, id: NodeId) -> Vec<f64> {
        self.neighbor_cache
            .get(&id)
            .map(|slots| {
                let mut row = vec![0.0; self.cfg.capacity];
                for &s in slots {
                    row[s] = 1.0;
                }
                row
            })
            .unwrap_or_else(|| vec![0.0; self.cfg.capacity])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::{run_over, step_with};
    use glodyne_graph::id::Edge;

    fn cfg() -> DynGemConfig {
        DynGemConfig {
            dim: 8,
            hidden: 16,
            capacity: 64,
            epochs: 30,
            ..Default::default()
        }
    }

    fn two_cliques() -> Snapshot {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 5;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(5)));
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(DynGem::new(DynGemConfig {
            capacity: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn embeds_every_node() {
        let g = two_cliques();
        let mut m = DynGem::new(cfg()).unwrap();
        let report = step_with(&mut m, None, &g);
        assert_eq!(report.selected, 10);
        assert_eq!(m.embedding().len(), 10);
    }

    #[test]
    fn clique_members_embed_similarly() {
        let g = two_cliques();
        let mut m = DynGem::new(cfg()).unwrap();
        step_with(&mut m, None, &g);
        let e = m.embedding();
        let intra = e.cosine(NodeId(1), NodeId(2)).unwrap();
        let inter = e.cosine(NodeId(1), NodeId(7)).unwrap();
        assert!(intra > inter, "intra {intra} <= inter {inter}");
    }

    #[test]
    fn warm_start_across_steps() {
        let g = two_cliques();
        let mut m = DynGem::new(cfg()).unwrap();
        let embs = run_over(&mut m, &[g.clone(), g.clone()]);
        // Same graph re-trained from the warm model: embeddings stay
        // strongly correlated.
        let cos = glodyne_embed::embedding::cosine(
            embs[0].get(NodeId(3)).unwrap(),
            embs[1].get(NodeId(3)).unwrap(),
        );
        assert!(
            cos > 0.8,
            "warm start should keep vectors stable, cos {cos}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn capacity_failure_mirrors_paper_oom() {
        let edges: Vec<Edge> = (0..100)
            .map(|i| Edge::new(NodeId(i), NodeId(i + 1)))
            .collect();
        let g = Snapshot::from_edges(&edges, &[]);
        let mut m = DynGem::new(DynGemConfig {
            capacity: 16,
            ..cfg()
        })
        .unwrap();
        step_with(&mut m, None, &g);
    }
}
