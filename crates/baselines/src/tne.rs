//! tNE / tNodeEmbed (Singer et al., IJCAI 2019) — the paper's \[18\].
//!
//! "tNE runs a static network embedding method to get node embeddings
//! for each snapshot, and then exploits the temporal dependence among
//! all available static node embeddings using Recurrent Neural
//! Networks." We adopt the paper's setup of "the link prediction
//! architecture of tNE" — the RNN is trained with a link-prediction
//! signal over the current snapshot's edges.
//!
//! Pipeline per time step `t`:
//! 1. run static SGNS on `G^t` (warm-started between steps, which
//!    doubles as tNodeEmbed's orthogonal-Procrustes alignment of
//!    consecutive static embeddings — both remove arbitrary rotation
//!    between steps);
//! 2. for every node, build the sequence of its static embeddings over
//!    `0..=t` (zeros before the node existed);
//! 3. train a shared vanilla RNN to map each node's sequence to a final
//!    embedding, with the loss `−log σ(y_i·y_j) − Σ log σ(−y_i·y_n)`
//!    over edges of `G^t` (the partner vector is treated as constant
//!    per update — a one-sided gradient, standard for siamese-style
//!    training loops);
//! 4. `Z^t` = RNN outputs.
//!
//! Cost grows with history length — tNE is among the slowest methods in
//! Table 4, which this reproduction reproduces naturally.
//!
//! **Cannot handle node deletions** (sequence bookkeeping assumes a
//! grow-only vocabulary) — n/a on AS733, as in the paper.

use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{DynamicEmbedder, PhaseTimes, StepContext, StepReport};
use glodyne_embed::walks::{generate_corpus_all, WalkConfig};
use glodyne_embed::{Embedding, SgnsConfig, SgnsModel};
use glodyne_graph::NodeId;
use glodyne_linalg::rnn::Rnn;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// tNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TneConfig {
    /// Static (per-snapshot) embedding dimensionality.
    pub static_dim: usize,
    /// RNN hidden width.
    pub hidden: usize,
    /// Output embedding dimensionality.
    pub dim: usize,
    /// Walk parameters for the static stage.
    pub walk: WalkConfig,
    /// SGNS parameters for the static stage.
    pub sgns: SgnsConfig,
    /// Edge samples for RNN training per step.
    pub rnn_samples: usize,
    /// Negative samples per positive in RNN training.
    pub negatives: usize,
    /// RNN learning rate.
    pub rnn_lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TneConfig {
    fn default() -> Self {
        TneConfig {
            static_dim: 128,
            hidden: 128,
            dim: 128,
            walk: WalkConfig::default(),
            sgns: SgnsConfig::default(),
            rnn_samples: 400,
            negatives: 2,
            rnn_lr: 0.02,
            seed: 0,
        }
    }
}

/// The tNE embedder.
pub struct TNE {
    cfg: TneConfig,
    static_model: SgnsModel,
    /// Static embedding per past time step.
    history: Vec<Embedding>,
    rnn: Rnn,
    rng: ChaCha8Rng,
    latest: Vec<NodeId>,
}

impl TneConfig {
    /// Validate the hyper-parameters, including the nested walk and
    /// SGNS configurations of the static stage.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.static_dim < 1 {
            return Err(ConfigError::new("static_dim", "must be >= 1"));
        }
        if self.hidden < 1 {
            return Err(ConfigError::new("hidden", "must be >= 1"));
        }
        if self.dim < 1 {
            return Err(ConfigError::new("dim", "must be >= 1"));
        }
        if !(self.rnn_lr.is_finite() && self.rnn_lr > 0.0) {
            return Err(ConfigError::new(
                "rnn_lr",
                format!("must be a positive finite number, got {}", self.rnn_lr),
            ));
        }
        self.walk.validate()?;
        self.sgns.validate()?;
        Ok(())
    }
}

impl TNE {
    /// Build with a validated configuration.
    pub fn new(cfg: TneConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x73E);
        let mut sgns = cfg.sgns.clone();
        sgns.dim = cfg.static_dim;
        let static_model = SgnsModel::new(sgns);
        let rnn = Rnn::new(cfg.static_dim, cfg.hidden, cfg.dim, &mut rng);
        Ok(TNE {
            cfg,
            static_model,
            history: Vec::new(),
            rnn,
            rng,
            latest: Vec::new(),
        })
    }

    /// A node's sequence of static embeddings over all steps so far.
    fn sequence_of(&self, id: NodeId) -> Vec<Vec<f64>> {
        self.history
            .iter()
            .map(|e| match e.get(id) {
                Some(v) => v.iter().map(|&x| x as f64).collect(),
                None => vec![0.0; self.cfg.static_dim],
            })
            .collect()
    }

    fn rnn_output(&self, id: NodeId) -> Vec<f32> {
        self.rnn
            .forward(&self.sequence_of(id))
            .into_iter()
            .map(|x| x as f32)
            .collect()
    }
}

impl DynamicEmbedder for TNE {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let curr = ctx.curr;
        // Stage 1: static embedding of the current snapshot.
        let walk_cfg = WalkConfig {
            seed: self.cfg.walk.seed ^ ((self.history.len() as u64) << 8),
            ..self.cfg.walk
        };
        let t0 = Instant::now();
        let corpus = generate_corpus_all(curr, &walk_cfg);
        let t1 = Instant::now();
        let pairs = self.static_model.train_corpus(&corpus);
        self.history.push(self.static_model.embedding());

        // Stage 2: RNN over embedding histories with link-prediction loss.
        let edges: Vec<(NodeId, NodeId)> = curr.edges().map(|e| (e.u, e.v)).collect();
        let ids: Vec<NodeId> = curr.node_ids().to_vec();
        if !edges.is_empty() && ids.len() >= 2 {
            for _ in 0..self.cfg.rnn_samples {
                let &(i, j) = &edges[self.rng.gen_range(0..edges.len())];
                // positive: pull y_i toward y_j (partner held constant)
                let target = self
                    .rnn_output(j)
                    .iter()
                    .map(|&x| x as f64)
                    .collect::<Vec<_>>();
                let seq = self.sequence_of(i);
                self.rnn.train_step(&seq, &target, self.cfg.rnn_lr);
                // negatives: push y_i away from random nodes by moving it
                // toward the negated partner output
                for _ in 0..self.cfg.negatives {
                    let n = ids[self.rng.gen_range(0..ids.len())];
                    if n == i || n == j || curr.has_edge_ids(i, n) {
                        continue;
                    }
                    let anti: Vec<f64> = self
                        .rnn_output(n)
                        .iter()
                        .map(|&x| -(x as f64) * 0.3)
                        .collect();
                    self.rnn.train_step(&seq, &anti, self.cfg.rnn_lr * 0.3);
                }
            }
        }
        let selected = ids.len();
        self.latest = ids;
        StepReport {
            phases: PhaseTimes {
                select: std::time::Duration::ZERO,
                walks: t1 - t0,
                train: t1.elapsed(),
            },
            selected,
            trained_pairs: pairs,
            corpus_tokens: corpus.num_tokens(),
            dirty_rows: 0,
        }
    }

    fn embedding(&self) -> Embedding {
        let mut e = Embedding::new(self.cfg.dim);
        for &id in &self.latest {
            e.set(id, &self.rnn_output(id));
        }
        e
    }

    fn name(&self) -> &'static str {
        "tNE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::{run_over, step_with};
    use glodyne_graph::id::Edge;
    use glodyne_graph::Snapshot;

    fn cfg() -> TneConfig {
        TneConfig {
            static_dim: 12,
            hidden: 12,
            dim: 8,
            walk: WalkConfig {
                walks_per_node: 3,
                walk_length: 10,
                seed: 2,
            },
            sgns: SgnsConfig {
                dim: 12,
                window: 3,
                negatives: 3,
                epochs: 3,
                parallel: false,
                ..Default::default()
            },
            rnn_samples: 150,
            ..Default::default()
        }
    }

    fn two_cliques() -> Snapshot {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(6)));
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(TNE::new(TneConfig {
            hidden: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn produces_embeddings_for_all_nodes() {
        let g = two_cliques();
        let mut m = TNE::new(cfg()).unwrap();
        let report = step_with(&mut m, None, &g);
        assert_eq!(report.selected, 12);
        assert!(report.corpus_tokens > 0);
        assert_eq!(m.embedding().len(), 12);
        assert_eq!(m.embedding().dim(), 8);
    }

    #[test]
    fn history_grows_each_step() {
        let g = two_cliques();
        let mut m = TNE::new(cfg()).unwrap();
        let _ = run_over(&mut m, &[g.clone(), g.clone(), g]);
        assert_eq!(m.history.len(), 3);
    }

    #[test]
    fn linked_nodes_closer_than_strangers() {
        let g = two_cliques();
        let mut m = TNE::new(cfg()).unwrap();
        step_with(&mut m, None, &g);
        step_with(&mut m, Some(&g), &g);
        let e = m.embedding();
        let intra = e.cosine(NodeId(1), NodeId(2)).unwrap();
        let inter = e.cosine(NodeId(1), NodeId(8)).unwrap();
        assert!(intra > inter, "intra {intra} <= inter {inter}");
    }

    #[test]
    fn new_node_gets_zero_padded_history() {
        let g0 = two_cliques();
        let mut edges: Vec<Edge> = g0.edges().collect();
        edges.push(Edge::new(NodeId(0), NodeId(30)));
        let g1 = Snapshot::from_edges(&edges, &[]);
        let mut m = TNE::new(cfg()).unwrap();
        step_with(&mut m, None, &g0);
        step_with(&mut m, Some(&g0), &g1);
        let seq = m.sequence_of(NodeId(30));
        assert_eq!(seq.len(), 2);
        assert!(seq[0].iter().all(|&x| x == 0.0), "pre-birth steps are zero");
        assert!(m.embedding().get(NodeId(30)).is_some());
    }
}
