//! DynamicTriad (Zhou et al., AAAI 2018) — the paper's \[15\].
//!
//! "DynTriad models the triadic closure process, social homophily, and
//! temporal smoothness in its objective function", optimised per
//! snapshot over its existing edges. The loss here keeps the three
//! published terms in simplified form:
//!
//! 1. **social homophily** — logistic edge likelihood with negative
//!    sampling: `−log σ(z_i·z_j)` for edges, `−log σ(−z_i·z_n)` for
//!    sampled non-edges;
//! 2. **triadic closure** — for sampled open triads `(j, i, k)` (edges
//!    i–j and i–k present, j–k absent) a weak attractive term pulls
//!    `z_j·z_k` up, modelling the closure tendency mediated by the
//!    common neighbour;
//! 3. **temporal smoothness** — `β‖z_i^t − z_i^{t−1}‖²` toward the
//!    previous step's vector.
//!
//! Simplification vs the original: the closure probability is not
//! weighted by learned social strength; a constant closure weight is
//! used. The original's high result variance across runs (the ±20%
//! std-devs in Table 1) is reproduced naturally by its sensitivity to
//! the sampled triads.

use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{DynamicEmbedder, PhaseTimes, StepContext, StepReport};
use glodyne_embed::Embedding;
use glodyne_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;

/// DynTriad hyper-parameters.
#[derive(Debug, Clone)]
pub struct DynTriadConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Epochs over the edge set per snapshot.
    pub epochs: usize,
    /// Negative samples per edge.
    pub negatives: usize,
    /// Weight of the triadic-closure term.
    pub closure_weight: f32,
    /// Temporal-smoothness weight β.
    pub beta: f32,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynTriadConfig {
    fn default() -> Self {
        DynTriadConfig {
            dim: 128,
            epochs: 4,
            negatives: 4,
            closure_weight: 0.3,
            beta: 0.1,
            learning_rate: 0.03,
            seed: 0,
        }
    }
}

/// The DynTriad embedder.
pub struct DynTriad {
    cfg: DynTriadConfig,
    z: HashMap<NodeId, Vec<f32>>,
    prev_z: HashMap<NodeId, Vec<f32>>,
    rng: ChaCha8Rng,
    latest: Vec<NodeId>,
}

impl DynTriadConfig {
    /// Validate the hyper-parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dim < 1 {
            return Err(ConfigError::new("dim", "must be >= 1"));
        }
        if self.epochs < 1 {
            return Err(ConfigError::new("epochs", "must be >= 1"));
        }
        if self.negatives < 1 {
            return Err(ConfigError::new("negatives", "must be >= 1"));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(ConfigError::new(
                "learning_rate",
                format!(
                    "must be a positive finite number, got {}",
                    self.learning_rate
                ),
            ));
        }
        if !(self.beta.is_finite() && self.beta >= 0.0) {
            return Err(ConfigError::new(
                "beta",
                format!("must be a non-negative finite number, got {}", self.beta),
            ));
        }
        Ok(())
    }
}

impl DynTriad {
    /// Build with a validated configuration.
    pub fn new(cfg: DynTriadConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7214D);
        Ok(DynTriad {
            cfg,
            z: HashMap::new(),
            prev_z: HashMap::new(),
            rng,
            latest: Vec::new(),
        })
    }

    fn ensure(&mut self, id: NodeId) {
        let d = self.cfg.dim;
        let rng = &mut self.rng;
        self.z
            .entry(id)
            .or_insert_with(|| (0..d).map(|_| rng.gen_range(-0.1..0.1)).collect());
    }

    /// Attract (label 1) or repel (label 0) the pair, scaled by `weight`.
    fn pair_update(&mut self, a: NodeId, b: NodeId, label: f32, weight: f32) {
        let d = self.cfg.dim;
        let lr = self.cfg.learning_rate * weight;
        let za = self.z.get(&a).unwrap().clone();
        let zb = self.z.get(&b).unwrap().clone();
        let dot: f32 = za.iter().zip(&zb).map(|(x, y)| x * y).sum();
        let g = (label - sigmoid(dot)) * lr;
        {
            let ra = self.z.get_mut(&a).unwrap();
            for k in 0..d {
                ra[k] += g * zb[k];
            }
        }
        let rb = self.z.get_mut(&b).unwrap();
        for k in 0..d {
            rb[k] += g * za[k];
        }
    }

    fn smooth_toward_previous(&mut self, id: NodeId) {
        if let Some(prev) = self.prev_z.get(&id) {
            let beta = self.cfg.beta * self.cfg.learning_rate;
            let cur = self.z.get_mut(&id).unwrap();
            for (c, &p) in cur.iter_mut().zip(prev) {
                *c -= beta * (*c - p);
            }
        }
    }
}

impl DynamicEmbedder for DynTriad {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let start = Instant::now();
        let curr = ctx.curr;
        for l in 0..curr.num_nodes() {
            self.ensure(curr.node_id(l));
        }
        let ids: Vec<NodeId> = curr.node_ids().to_vec();
        let edges: Vec<(NodeId, NodeId)> = curr.edges().map(|e| (e.u, e.v)).collect();
        if edges.is_empty() {
            self.latest = ids;
            return StepReport::default();
        }
        for _ in 0..self.cfg.epochs {
            // 1) social homophily over edges + negatives
            for &(i, j) in &edges {
                self.pair_update(i, j, 1.0, 1.0);
                for _ in 0..self.cfg.negatives {
                    let n = ids[self.rng.gen_range(0..ids.len())];
                    if n != i && n != j && !curr.has_edge_ids(i, n) {
                        self.pair_update(i, n, 0.0, 1.0);
                    }
                }
            }
            // 2) triadic closure on sampled open triads
            let triad_samples = edges.len();
            for _ in 0..triad_samples {
                let center = self.rng.gen_range(0..curr.num_nodes());
                let ns = curr.neighbors(center);
                if ns.len() < 2 {
                    continue;
                }
                let a = ns[self.rng.gen_range(0..ns.len())];
                let b = ns[self.rng.gen_range(0..ns.len())];
                if a == b || curr.has_edge(a as usize, b as usize) {
                    continue;
                }
                let (ja, jb) = (curr.node_id(a as usize), curr.node_id(b as usize));
                let w = self.cfg.closure_weight;
                self.pair_update(ja, jb, 1.0, w);
            }
            // 3) temporal smoothness
            for &id in &ids {
                self.smooth_toward_previous(id);
            }
        }
        self.prev_z = self.z.clone();
        let selected = ids.len();
        self.latest = ids;
        StepReport {
            phases: PhaseTimes {
                train: start.elapsed(),
                ..PhaseTimes::default()
            },
            selected,
            trained_pairs: edges.len() * self.cfg.epochs,
            corpus_tokens: 0,
            dirty_rows: 0,
        }
    }

    fn embedding(&self) -> Embedding {
        let mut e = Embedding::new(self.cfg.dim);
        for &id in &self.latest {
            if let Some(v) = self.z.get(&id) {
                e.set(id, v);
            }
        }
        e
    }

    fn name(&self) -> &'static str {
        "DynTriad"
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::{run_over, step_with};
    use glodyne_graph::id::Edge;
    use glodyne_graph::Snapshot;

    fn cfg() -> DynTriadConfig {
        DynTriadConfig {
            dim: 12,
            epochs: 16,
            ..Default::default()
        }
    }

    fn two_cliques() -> Snapshot {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(6)));
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(DynTriad::new(DynTriadConfig {
            epochs: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn separates_communities() {
        let g = two_cliques();
        let mut m = DynTriad::new(cfg()).unwrap();
        step_with(&mut m, None, &g);
        let e = m.embedding();
        let intra = e.cosine(NodeId(1), NodeId(2)).unwrap();
        let inter = e.cosine(NodeId(1), NodeId(8)).unwrap();
        assert!(intra > inter, "intra {intra} <= inter {inter}");
    }

    #[test]
    fn temporal_smoothness_limits_drift() {
        let g = two_cliques();
        let mut smooth = DynTriad::new(DynTriadConfig { beta: 2.0, ..cfg() }).unwrap();
        let mut loose = DynTriad::new(DynTriadConfig { beta: 0.0, ..cfg() }).unwrap();
        let drift = |m: &mut DynTriad| {
            let embs = run_over(m, &[two_cliques(), two_cliques()]);
            embs[0]
                .iter()
                .map(|(id, v)| {
                    v.iter()
                        .zip(embs[1].get(id).unwrap())
                        .map(|(a, b)| ((a - b) as f64).powi(2))
                        .sum::<f64>()
                        .sqrt()
                })
                .sum::<f64>()
        };
        let _ = &g;
        let ds = drift(&mut smooth);
        let dl = drift(&mut loose);
        assert!(ds <= dl * 1.2, "smooth drift {ds} vs loose {dl}");
    }

    #[test]
    fn all_nodes_embedded() {
        let g = two_cliques();
        let mut m = DynTriad::new(cfg()).unwrap();
        let report = step_with(&mut m, None, &g);
        assert_eq!(report.selected, g.num_nodes());
        assert!(report.trained_pairs > 0);
        assert_eq!(m.embedding().len(), g.num_nodes());
    }
}
