//! DynLINE (Du et al., IJCAI 2018) — the paper's \[14\].
//!
//! Extends LINE (Tang et al., 2015) to dynamic networks: embeddings are
//! trained with the second-order LINE objective (edge sampling with
//! negative sampling over vertex/context vectors), and at each new
//! snapshot only "the most affected nodes and new nodes" are updated.
//!
//! Objective per sampled edge `(i, j)`:
//! `log σ(u_i · c_j) + Σ_q E_{n~P} log σ(−u_i · c_n)`.
//!
//! Simplifications: uniform (not degree-weighted) edge sampling within
//! the affected set and a plain unigram negative table; both preserve
//! LINE's first/second-order behaviour at our scales.
//!
//! **Cannot handle node deletions** (vectors of deleted nodes linger and
//! there is no mechanism to rebalance) — the reason this method is n/a
//! on AS733 in the paper. The harness enforces that via
//! [`crate::supports_node_deletions`].

use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{DynamicEmbedder, PhaseTimes, StepContext, StepReport};
use glodyne_embed::Embedding;
use glodyne_graph::{NodeId, Snapshot};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;

/// DynLINE hyper-parameters.
#[derive(Debug, Clone)]
pub struct DynLineConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Negative samples per edge.
    pub negatives: usize,
    /// Edge samples per node of the (affected) training set per step.
    pub samples_per_node: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynLineConfig {
    fn default() -> Self {
        DynLineConfig {
            dim: 128,
            negatives: 5,
            samples_per_node: 60,
            learning_rate: 0.025,
            seed: 0,
        }
    }
}

/// The DynLINE embedder.
pub struct DynLine {
    cfg: DynLineConfig,
    vertex: HashMap<NodeId, Vec<f32>>,
    context: HashMap<NodeId, Vec<f32>>,
    rng: ChaCha8Rng,
    latest: Vec<NodeId>,
}

impl DynLineConfig {
    /// Validate the hyper-parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dim < 1 {
            return Err(ConfigError::new("dim", "must be >= 1"));
        }
        if self.negatives < 1 {
            return Err(ConfigError::new("negatives", "must be >= 1"));
        }
        if self.samples_per_node < 1 {
            return Err(ConfigError::new("samples_per_node", "must be >= 1"));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(ConfigError::new(
                "learning_rate",
                format!(
                    "must be a positive finite number, got {}",
                    self.learning_rate
                ),
            ));
        }
        Ok(())
    }
}

impl DynLine {
    /// Build with a validated configuration.
    pub fn new(cfg: DynLineConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x11E);
        Ok(DynLine {
            cfg,
            vertex: HashMap::new(),
            context: HashMap::new(),
            rng,
            latest: Vec::new(),
        })
    }

    fn ensure(&mut self, id: NodeId) {
        let d = self.cfg.dim;
        let rng = &mut self.rng;
        self.vertex.entry(id).or_insert_with(|| {
            (0..d)
                .map(|_| rng.gen_range(-0.5 / d as f32..0.5 / d as f32))
                .collect()
        });
        self.context.entry(id).or_insert_with(|| vec![0.0; d]);
    }

    /// One SGD update on edge (i, j) with `q` negatives drawn from `pool`.
    fn update_edge(&mut self, i: NodeId, j: NodeId, pool: &[NodeId]) {
        let d = self.cfg.dim;
        let lr = self.cfg.learning_rate;
        let mut grad_i = vec![0.0f32; d];
        for q in 0..=self.cfg.negatives {
            let (target, label) = if q == 0 {
                (j, 1.0f32)
            } else {
                let n = pool[self.rng.gen_range(0..pool.len())];
                if n == j || n == i {
                    continue;
                }
                (n, 0.0)
            };
            let vi = self.vertex.get(&i).unwrap();
            let ct = self.context.get(&target).unwrap();
            let dot: f32 = vi.iter().zip(ct).map(|(a, b)| a * b).sum();
            let g = (label - sigmoid(dot)) * lr;
            for k in 0..d {
                grad_i[k] += g * ct[k];
            }
            let vi_copy: Vec<f32> = vi.clone();
            let ct = self.context.get_mut(&target).unwrap();
            for k in 0..d {
                ct[k] += g * vi_copy[k];
            }
        }
        let vi = self.vertex.get_mut(&i).unwrap();
        for k in 0..d {
            vi[k] += grad_i[k];
        }
    }

    fn train_nodes(&mut self, g: &Snapshot, train_set: &[u32]) {
        let pool: Vec<NodeId> = g.node_ids().to_vec();
        if pool.len() < 2 {
            return;
        }
        for &l in train_set {
            let id = g.node_id(l as usize);
            let neighbors = g.neighbors(l as usize);
            if neighbors.is_empty() {
                continue;
            }
            for _ in 0..self.cfg.samples_per_node {
                let j = neighbors[self.rng.gen_range(0..neighbors.len())];
                let jid = g.node_id(j as usize);
                self.update_edge(id, jid, &pool);
            }
        }
    }
}

impl DynamicEmbedder for DynLine {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let start = Instant::now();
        let curr = ctx.curr;
        for l in 0..curr.num_nodes() {
            self.ensure(curr.node_id(l));
        }
        let train_set: Vec<u32> = match ctx.prev {
            // Offline: all nodes.
            None => (0..curr.num_nodes() as u32).collect(),
            // Online: only the most affected + new nodes, read from the
            // step context's diff.
            Some(p) => {
                let diff = ctx.diff().expect("online step always has a diff");
                (0..curr.num_nodes() as u32)
                    .filter(|&l| {
                        let id = curr.node_id(l as usize);
                        diff.node_change(id) > 0 || p.local_of(id).is_none()
                    })
                    .collect()
            }
        };
        self.train_nodes(curr, &train_set);
        self.latest = curr.node_ids().to_vec();
        StepReport {
            phases: PhaseTimes {
                train: start.elapsed(),
                ..PhaseTimes::default()
            },
            selected: train_set.len(),
            trained_pairs: train_set.len() * self.cfg.samples_per_node,
            corpus_tokens: 0,
            dirty_rows: 0,
        }
    }

    fn embedding(&self) -> Embedding {
        let mut e = Embedding::new(self.cfg.dim);
        for &id in &self.latest {
            if let Some(v) = self.vertex.get(&id) {
                e.set(id, v);
            }
        }
        e
    }

    fn name(&self) -> &'static str {
        "DynLINE"
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::step_with;
    use glodyne_graph::id::Edge;

    fn cfg() -> DynLineConfig {
        DynLineConfig {
            dim: 12,
            samples_per_node: 120,
            ..Default::default()
        }
    }

    fn two_cliques() -> Snapshot {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(6)));
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(DynLine::new(DynLineConfig {
            dim: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn separates_communities() {
        let g = two_cliques();
        let mut m = DynLine::new(cfg()).unwrap();
        step_with(&mut m, None, &g);
        let e = m.embedding();
        let intra = e.cosine(NodeId(1), NodeId(2)).unwrap();
        let inter = e.cosine(NodeId(1), NodeId(8)).unwrap();
        assert!(intra > inter, "intra {intra} <= inter {inter}");
    }

    #[test]
    fn online_step_only_moves_affected_nodes() {
        let g0 = two_cliques();
        let mut edges: Vec<Edge> = g0.edges().collect();
        edges.push(Edge::new(NodeId(3), NodeId(9)));
        let g1 = Snapshot::from_edges(&edges, &[]);
        let mut m = DynLine::new(cfg()).unwrap();
        let offline = step_with(&mut m, None, &g0);
        assert_eq!(offline.selected, g0.num_nodes());
        let before = m.embedding();
        let online = step_with(&mut m, Some(&g0), &g1);
        assert!(
            online.selected < g1.num_nodes(),
            "online step trains only affected nodes"
        );
        let after = m.embedding();
        // Node 5 was unaffected: its vertex vector can only have moved via
        // context updates — the vertex vector itself is untouched.
        assert_eq!(before.get(NodeId(5)), after.get(NodeId(5)));
        // Affected node 3 moved.
        assert_ne!(before.get(NodeId(3)), after.get(NodeId(3)));
    }

    #[test]
    fn new_nodes_are_embedded() {
        let g0 = two_cliques();
        let mut edges: Vec<Edge> = g0.edges().collect();
        edges.push(Edge::new(NodeId(0), NodeId(42)));
        let g1 = Snapshot::from_edges(&edges, &[]);
        let mut m = DynLine::new(cfg()).unwrap();
        step_with(&mut m, None, &g0);
        step_with(&mut m, Some(&g0), &g1);
        assert!(m.embedding().get(NodeId(42)).is_some());
    }
}
