//! `glodyne-telemetry`: lock-free runtime metrics for the serving
//! stack.
//!
//! Three primitives, all std-only and wait-free on the record path:
//!
//! - [`Counter`] — a monotone `AtomicU64`.
//! - [`Gauge`] — an `AtomicU64` holding `f64` bits, for instantaneous
//!   values (queue depth, rolling recall).
//! - [`Histogram`] — a fixed array of power-of-two (log2) buckets over
//!   `u64` microseconds. [`Histogram::record`] is four relaxed
//!   `fetch_add`/`fetch_max` operations and never allocates, locks, or
//!   branches on contention, so it is safe on the hottest query path.
//!   [`Histogram::snapshot`] reads the buckets once and derives
//!   p50/p90/p99/max.
//!
//! [`StageTimer`] is an RAII guard that attributes wall time to a
//! histogram on drop — wrap a pipeline stage in one and the stage's
//! latency lands in the right series even on early return.
//!
//! A [`Registry`] names the metrics and renders them as Prometheus
//! text exposition ([`Registry::render_prometheus`]). Registration
//! takes a short write lock; recording through the returned `Arc`
//! handles never touches the registry again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 64 value buckets cover
/// the full `u64` range, so `record` never clamps.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (stored as `f64` bits in an `AtomicU64`).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 latency histogram over `u64` microseconds.
///
/// Buckets are powers of two: index 0 counts exact zeros, index
/// `i ≥ 1` counts values in `[2^(i-1), 2^i)`. Quantiles are read from
/// the cumulative bucket counts and reported as the containing
/// bucket's inclusive upper bound (`2^i - 1`) — an overestimate of at
/// most 2x, monotone in the quantile by construction. `max` is exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a recorded value: `0` for `0`, else
/// `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation (microseconds by convention). Wait-free:
    /// three relaxed `fetch_add`s and one relaxed `fetch_max`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`Duration`] as whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// One raw bucket's count (test/exposition surface).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// A point-in-time read of the whole histogram. Concurrent
    /// `record`s may straddle the read (the snapshot is not a seqcst
    /// cut) but every field is individually coherent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile observation, 1-based.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i);
                }
            }
            bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    /// Start an RAII timer that records into this histogram on drop.
    pub fn start_timer(self: &Arc<Self>) -> StageTimer {
        StageTimer {
            histogram: Arc::clone(self),
            start: Instant::now(),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (micros).
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// RAII guard attributing wall time to a named pipeline stage: created
/// via [`Histogram::start_timer`], records the elapsed micros into the
/// histogram when dropped.
#[derive(Debug)]
pub struct StageTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl StageTimer {
    /// Elapsed time so far (the amount `drop` would record now).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Record now and consume the guard (identical to dropping it,
    /// but explicit at call sites where the stage boundary matters).
    pub fn observe(self) {}
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A named collection of metrics with Prometheus text rendering.
///
/// Registration (rare, startup-time) takes a write lock; the returned
/// `Arc` handles record without ever touching the registry again.
/// Registering the same `(name, labels)` twice returns the original
/// handle, so independent subsystems can share a series.
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register_with<T, F>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: F,
    ) -> Arc<T>
    where
        F: FnOnce() -> (Arc<T>, Metric),
        T: 'static,
        Metric: AsHandle<T>,
    {
        let mut entries = self.entries.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
        {
            if let Some(handle) = existing.metric.as_handle() {
                return handle;
            }
        }
        let (handle, metric) = make();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric,
        });
        handle
    }

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register_with(name, help, labels, || {
            let c = Arc::new(Counter::new());
            (Arc::clone(&c), Metric::Counter(c))
        })
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register_with(name, help, labels, || {
            let g = Arc::new(Gauge::new());
            (Arc::clone(&g), Metric::Gauge(g))
        })
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register_with(name, help, labels, || {
            let h = Arc::new(Histogram::new());
            (Arc::clone(&h), Metric::Histogram(h))
        })
    }

    /// Render every registered metric as Prometheus text exposition:
    /// `# HELP`/`# TYPE` once per metric name, then one sample line
    /// per series (histograms expand to cumulative `_bucket` lines up
    /// to the highest non-empty bucket, plus `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.read().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        let mut described: Vec<&str> = Vec::new();
        for entry in entries.iter() {
            if !described.contains(&entry.name.as_str()) {
                described.push(&entry.name);
                let kind = match entry.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
                out.push_str(&format!("# TYPE {} {kind}\n", entry.name));
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        entry.name,
                        label_set(&entry.labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        entry.name,
                        label_set(&entry.labels, None),
                        format_f64(g.get())
                    ));
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    let top = (0..HISTOGRAM_BUCKETS)
                        .rev()
                        .find(|&i| h.bucket(i) > 0)
                        .unwrap_or(0);
                    for i in 0..=top {
                        cumulative += h.bucket(i);
                        let le = if i >= 64 {
                            "+Inf".to_string()
                        } else {
                            bucket_upper_bound(i).to_string()
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            entry.name,
                            label_set(&entry.labels, Some(&le)),
                        ));
                    }
                    if top < 64 {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            entry.name,
                            label_set(&entry.labels, Some("+Inf")),
                            h.count(),
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        entry.name,
                        label_set(&entry.labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        entry.name,
                        label_set(&entry.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// Extract a typed handle back out of a registered metric (used for
/// idempotent re-registration).
trait AsHandle<T> {
    fn as_handle(&self) -> Option<Arc<T>>;
}

impl AsHandle<Counter> for Metric {
    fn as_handle(&self) -> Option<Arc<Counter>> {
        match self {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        }
    }
}

impl AsHandle<Gauge> for Metric {
    fn as_handle(&self) -> Option<Arc<Gauge>> {
        match self {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        }
    }
}

impl AsHandle<Histogram> for Metric {
    fn as_handle(&self) -> Option<Arc<Histogram>> {
        match self {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        }
    }
}

fn labels_eq(stored: &[(String, String)], wanted: &[(&str, &str)]) -> bool {
    stored.len() == wanted.len()
        && stored
            .iter()
            .zip(wanted)
            .all(|((k, v), &(wk, wv))| k == wk && v == wv)
}

fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Render an `f64` the way Prometheus expects: integral values without
/// a trailing `.0`, everything else with enough digits to round-trip.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.97);
        assert!((g.get() - 0.97).abs() < 1e-12);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // 0 lands in bucket 0; 2^(i-1) and 2^i - 1 share bucket i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
            assert_eq!(hi + 1, 1u64 << i, "buckets tile without gaps");
        }

        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(10), 1); // 1000 in [512, 1024)
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.snapshot().max, 1000, "max is exact, not bucketed");
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bound_the_data() {
        let h = Histogram::new();
        // Skewed data: mostly fast, a slow tail.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(5_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
        assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
        assert!(s.p99 <= s.max, "p99 {} > max {}", s.p99, s.max);
        // Each quantile's bucket bound is >= the true quantile and
        // less than 2x above it.
        assert!(s.p50 >= 100 && s.p50 < 200, "p50 = {}", s.p50);
        assert!(s.p99 >= 5_000 && s.p99 < 10_000, "p99 = {}", s.p99);
        assert_eq!(s.max, 1_000_000);
        assert!((s.mean() - 10_540.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_records_sum_exactly() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t as u64 * per_thread + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let total = threads as u64 * per_thread;
        assert_eq!(h.count(), total, "no record lost under contention");
        // Sum of 0..total, exact because every add is atomic.
        assert_eq!(h.sum(), total * (total - 1) / 2);
        let bucket_total: u64 = (0..HISTOGRAM_BUCKETS).map(|i| h.bucket(i)).sum();
        assert_eq!(bucket_total, total, "bucket counts account for all");
        assert_eq!(h.snapshot().max, total - 1);
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = h.start_timer();
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 2_000, "at least the slept 2ms in micros");

        let t = h.start_timer();
        assert!(t.elapsed() < Duration::from_secs(1));
        t.observe();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_is_idempotent_and_renders_prometheus_text() {
        let r = Registry::new();
        let c1 = r.counter(
            "glodyne_requests_total",
            "Requests served",
            &[("cmd", "query")],
        );
        let c2 = r.counter(
            "glodyne_requests_total",
            "Requests served",
            &[("cmd", "query")],
        );
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same (name, labels) shares one series");
        let other = r.counter(
            "glodyne_requests_total",
            "Requests served",
            &[("cmd", "flush")],
        );
        other.inc();

        let g = r.gauge("glodyne_probe_recall_at_k", "Rolling probe recall", &[]);
        g.set(0.95);
        let h = r.histogram(
            "glodyne_wire_latency_us",
            "Wire latency",
            &[("cmd", "query")],
        );
        h.record(3);
        h.record(700);

        let text = r.render_prometheus();
        assert!(text.contains("# HELP glodyne_requests_total Requests served"));
        assert!(text.contains("# TYPE glodyne_requests_total counter"));
        // The HELP/TYPE header appears once even with two series.
        assert_eq!(text.matches("# TYPE glodyne_requests_total").count(), 1);
        assert!(text.contains("glodyne_requests_total{cmd=\"query\"} 3"));
        assert!(text.contains("glodyne_requests_total{cmd=\"flush\"} 1"));
        assert!(text.contains("# TYPE glodyne_probe_recall_at_k gauge"));
        assert!(text.contains("glodyne_probe_recall_at_k 0.95"));
        assert!(text.contains("# TYPE glodyne_wire_latency_us histogram"));
        assert!(text.contains("glodyne_wire_latency_us_bucket{cmd=\"query\",le=\"3\"} 1"));
        assert!(text.contains("glodyne_wire_latency_us_bucket{cmd=\"query\",le=\"+Inf\"} 2"));
        assert!(text.contains("glodyne_wire_latency_us_sum{cmd=\"query\"} 703"));
        assert!(text.contains("glodyne_wire_latency_us_count{cmd=\"query\"} 2"));
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
        assert_eq!(s.mean(), 0.0);
    }
}
