//! Quickstart: embed a small dynamic network with GloDyNE and inspect
//! what the embeddings preserve.
//!
//! Run: `cargo run --release --example quickstart`

use glodyne::{GloDyNE, GloDyNEConfig};
use glodyne_embed::traits::{step_with, DynamicEmbedder};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_graph::id::{Edge, NodeId};
use glodyne_graph::Snapshot;
use glodyne_tasks::gr::mean_precision_at_k;

fn main() {
    // A dynamic network of two communities; over time a third community
    // grows out of node 0.
    let mut edges: Vec<Edge> = Vec::new();
    for c in 0..2u32 {
        let base = c * 10;
        for i in 0..10 {
            for j in (i + 1)..10 {
                if (i + j) % 3 != 0 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
    }
    edges.push(Edge::new(NodeId(0), NodeId(10)));
    let g0 = Snapshot::from_edges(&edges, &[]);

    // Step 2: new nodes 20..25 attach to node 0's neighbourhood.
    let mut edges1 = edges.clone();
    for v in 20..25u32 {
        edges1.push(Edge::new(NodeId(v), NodeId(0)));
        edges1.push(Edge::new(NodeId(v), NodeId(v.saturating_sub(1).max(20))));
    }
    let g1 = Snapshot::from_edges(&edges1, &[]);

    let cfg = GloDyNEConfig {
        alpha: 0.3, // select 30% of nodes each online step
        walk: WalkConfig {
            walks_per_node: 8,
            walk_length: 20,
            seed: 1,
        },
        sgns: SgnsConfig {
            dim: 32,
            window: 4,
            negatives: 5,
            epochs: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut model = GloDyNE::new(cfg).expect("valid config");

    println!("== offline stage (t = 0) ==");
    step_with(&mut model, None, &g0);
    let z0 = model.embedding();
    println!("embedded {} nodes in {} dims", z0.len(), z0.dim());
    let p = mean_precision_at_k(&z0, &g0, &[1, 5, 10]);
    println!(
        "graph reconstruction MeanP@1/5/10: {:.3} / {:.3} / {:.3}",
        p[0], p[1], p[2]
    );

    println!("\n== online stage (t = 1: five new nodes) ==");
    let report = step_with(&mut model, Some(&g0), &g1);
    let z1 = model.embedding();
    println!(
        "selected {} representative nodes; phase times: {:?}",
        report.selected, report.phases
    );
    println!("new node 20 embedded: {}", z1.get(NodeId(20)).is_some());

    // Community structure should be visible in cosine space.
    let intra = z1.cosine(NodeId(1), NodeId(2)).unwrap();
    let inter = z1.cosine(NodeId(1), NodeId(15)).unwrap();
    println!("\ncosine(same community) = {intra:.3}, cosine(different) = {inter:.3}");
    assert!(intra > inter, "embedding should separate the communities");
    println!("OK: intra-community similarity exceeds inter-community similarity");
}
