//! Router-network drift monitor: use the reservoir scores and embedding
//! drift to surface which parts of a churning network (the paper's
//! AS733 scenario) changed the most — an operational use of the same
//! accumulated-change machinery GloDyNE selects nodes with.
//!
//! Run: `cargo run --release --example anomaly_monitor`

use glodyne::reservoir::Reservoir;
use glodyne::{GloDyNE, GloDyNEConfig};
use glodyne_embed::traits::{step_with, DynamicEmbedder};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_graph::SnapshotDiff;
use glodyne_tasks::stability::absolute_drift;

fn main() {
    let dataset = glodyne_datasets::as733(0.6, 11);
    let snaps = dataset.network.snapshots();
    println!(
        "AS733-like router network: {} snapshots with node churn",
        snaps.len()
    );

    let cfg = GloDyNEConfig {
        alpha: 0.15,
        walk: WalkConfig {
            walks_per_node: 6,
            walk_length: 25,
            seed: 5,
        },
        sgns: SgnsConfig {
            dim: 48,
            window: 5,
            negatives: 5,
            epochs: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut model = GloDyNE::new(cfg).expect("valid config");
    // An independent reservoir for reporting (GloDyNE drains its own).
    let mut monitor = Reservoir::new();

    let mut prev_emb = None;
    let mut prev_snap = None;
    println!(
        "\n{:<6}{:>8}{:>10}{:>12}{:>14}  hottest router",
        "t", "|V|", "±edges", "emb drift", "hottest score"
    );
    for (t, snap) in snaps.iter().enumerate() {
        step_with(&mut model, prev_snap, snap);
        let emb = model.embedding();
        let (changed, hottest) = match prev_snap {
            Some(p) => {
                let diff = SnapshotDiff::compute(p, snap);
                monitor.absorb(&diff);
                let hottest = snap
                    .node_ids()
                    .iter()
                    .map(|&id| (id, monitor.score(id, p)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                (diff.num_changed_edges(), Some(hottest))
            }
            None => (0, None),
        };
        let drift = prev_emb
            .as_ref()
            .and_then(|p| absolute_drift(p, &emb))
            .unwrap_or(0.0);
        match hottest {
            Some((id, score)) => println!(
                "{:<6}{:>8}{:>10}{:>12.4}{:>14.3}  {}",
                t,
                snap.num_nodes(),
                changed,
                drift,
                score,
                id
            ),
            None => println!(
                "{:<6}{:>8}{:>10}{:>12}{:>14}  -",
                t,
                snap.num_nodes(),
                changed,
                "-",
                "-"
            ),
        }
        prev_emb = Some(emb);
        prev_snap = Some(snap);
    }

    println!(
        "\nreservoir now tracks {} routers with unprocessed change",
        monitor.len()
    );
    println!("OK: accumulated-change scores give an operational change monitor");
}
