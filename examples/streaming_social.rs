//! Streaming social network: daily wall-post snapshots with bursty
//! community activity (the paper's FBW motivation), embedded
//! incrementally and evaluated on dynamic link prediction at each step.
//!
//! Demonstrates the end-to-end production loop through the streaming
//! session API: wall-post edges arrive as timed add/remove events → the
//! session commits a snapshot per day (`EpochPolicy::TimestampBoundary`)
//! and updates embeddings in O(α·|V|) work → the live embeddings rank
//! candidate future interactions at any moment.
//!
//! Run: `cargo run --release --example streaming_social`

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_graph::GraphEvent;
use glodyne_tasks::lp::{build_test_set, link_prediction_auc};

fn main() {
    let dataset = glodyne_datasets::fbw(0.4, 2024);
    let snaps = dataset.network.snapshots();
    println!(
        "FBW-like stream: {} daily snapshots, |V| {} -> {}",
        snaps.len(),
        snaps[0].num_nodes(),
        snaps.last().unwrap().num_nodes()
    );

    // Re-linearise the snapshots into the timed event stream a
    // production ingest pipeline would see: day `d` brings additions
    // for its new edges and removals for yesterday's edges that
    // disappeared (the session's graph state dedups repeats).
    let mut events: Vec<GraphEvent> = Vec::new();
    for (day, snap) in snaps.iter().enumerate() {
        let t = day as u64;
        if day > 0 {
            for e in snaps[day - 1].edges() {
                if !snap.has_edge_ids(e.u, e.v) {
                    events.push(GraphEvent::remove_edge(e.u, e.v, t));
                }
            }
        }
        events.extend(snap.edges().map(|e| GraphEvent::add_edge(e.u, e.v, t)));
    }

    let cfg = GloDyNEConfig::builder()
        .alpha(0.1)
        .walk(WalkConfig {
            walks_per_node: 6,
            walk_length: 30,
            seed: 7,
        })
        .sgns(SgnsConfig {
            dim: 64,
            window: 5,
            negatives: 5,
            epochs: 2,
            ..Default::default()
        })
        .build()
        .expect("valid config");
    let mut session = EmbedderSession::new(
        GloDyNE::new(cfg).expect("valid config"),
        EpochPolicy::TimestampBoundary,
    )
    .expect("valid policy")
    // The generated snapshots are already exactly the daily graphs;
    // keep them whole so the LP test sets line up.
    .keep_full_graph();

    println!(
        "\n{:<6}{:>8}{:>10}{:>12}{:>10}",
        "day", "|V|", "K_sel", "step_ms", "LP AUC"
    );
    let mut aucs = Vec::new();
    let mut report_day = |t: usize, session: &EmbedderSession<GloDyNE>| {
        let r = session.reports()[t];
        let ms = r.total_time().as_secs_f64() * 1e3;
        // Predict tomorrow's changes from today's live embeddings.
        let auc = if t + 1 < snaps.len() {
            let test = build_test_set(&snaps[t], &snaps[t + 1], 99 + t as u64);
            let a = link_prediction_auc(session.embedding(), &test);
            aucs.push(a);
            format!("{a:.3}")
        } else {
            "-".to_string()
        };
        println!(
            "{:<6}{:>8}{:>10}{:>12.1}{:>10}",
            t,
            session.last_snapshot().map_or(0, |s| s.num_nodes()),
            r.selected,
            ms,
            auc
        );
    };

    let mut t = 0usize;
    for &ev in &events {
        if session.apply(ev) {
            report_day(t, &session);
            t += 1;
        }
    }
    if session.flush().is_some() {
        report_day(t, &session);
    }

    let mean_auc = aucs.iter().sum::<f64>() / aucs.len() as f64;
    println!("\nmean link-prediction AUC over the stream: {mean_auc:.3}");
    assert!(mean_auc > 0.55, "embeddings should beat chance at LP");
    println!("OK: incremental embeddings predict future interactions above chance");
}
