//! Streaming social network: daily wall-post snapshots with bursty
//! community activity (the paper's FBW motivation), embedded
//! incrementally and evaluated on dynamic link prediction at each step.
//!
//! Demonstrates the end-to-end production loop a downstream user would
//! run: new snapshot arrives → embeddings update in O(α·|V|) work →
//! the fresh embeddings rank candidate future interactions.
//!
//! Run: `cargo run --release --example streaming_social`

use glodyne::{GloDyNE, GloDyNEConfig};
use glodyne_embed::traits::DynamicEmbedder;
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_tasks::lp::{build_test_set, link_prediction_auc};

fn main() {
    let dataset = glodyne_datasets::fbw(0.4, 2024);
    let snaps = dataset.network.snapshots();
    println!(
        "FBW-like stream: {} daily snapshots, |V| {} -> {}",
        snaps.len(),
        snaps[0].num_nodes(),
        snaps.last().unwrap().num_nodes()
    );

    let cfg = GloDyNEConfig {
        alpha: 0.1,
        walk: WalkConfig {
            walks_per_node: 6,
            walk_length: 30,
            seed: 7,
        },
        sgns: SgnsConfig {
            dim: 64,
            window: 5,
            negatives: 5,
            epochs: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut model = GloDyNE::new(cfg);

    println!(
        "\n{:<6}{:>8}{:>10}{:>12}{:>10}",
        "day", "|V|", "K_sel", "step_ms", "LP AUC"
    );
    let mut prev = None;
    let mut aucs = Vec::new();
    for (t, snap) in snaps.iter().enumerate() {
        model.advance(prev, snap);
        let ms = model.last_phase_times().total().as_secs_f64() * 1e3;
        // Predict tomorrow's changes from today's embeddings.
        let auc = if t + 1 < snaps.len() {
            let test = build_test_set(snap, &snaps[t + 1], 99 + t as u64);
            let a = link_prediction_auc(&model.embedding(), &test);
            aucs.push(a);
            format!("{a:.3}")
        } else {
            "-".to_string()
        };
        println!(
            "{:<6}{:>8}{:>10}{:>12.1}{:>10}",
            t,
            snap.num_nodes(),
            model.last_selected_count(),
            ms,
            auc
        );
        prev = Some(snap);
    }
    let mean_auc = aucs.iter().sum::<f64>() / aucs.len() as f64;
    println!("\nmean link-prediction AUC over the stream: {mean_auc:.3}");
    assert!(mean_auc > 0.55, "embeddings should beat chance at LP");
    println!("OK: incremental embeddings predict future interactions above chance");
}
