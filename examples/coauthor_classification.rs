//! Co-author field classification: embed a growing labelled co-author
//! network (the paper's DBLP scenario) and classify each author's field
//! from the embeddings at every time step — the Table 3 protocol as a
//! library workflow.
//!
//! Run: `cargo run --release --example coauthor_classification`

use glodyne::{GloDyNE, GloDyNEConfig};
use glodyne_embed::traits::{step_with, DynamicEmbedder};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_tasks::nc::node_classification;

fn main() {
    let dataset = glodyne_datasets::dblp(0.6, 7);
    let labels = dataset.labels.as_ref().expect("DBLP is labelled");
    let snaps = dataset.network.snapshots();
    println!(
        "DBLP-like co-author network: {} yearly snapshots, {} fields, |V| {} -> {}",
        snaps.len(),
        dataset.num_classes,
        snaps[0].num_nodes(),
        snaps.last().unwrap().num_nodes()
    );

    let cfg = GloDyNEConfig {
        alpha: 0.2,
        walk: WalkConfig {
            walks_per_node: 8,
            walk_length: 40,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 64,
            window: 6,
            negatives: 5,
            epochs: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut model = GloDyNE::new(cfg).expect("valid config");

    println!(
        "\n{:<6}{:>8}{:>12}{:>12}",
        "year", "|V|", "Micro-F1", "Macro-F1"
    );
    let mut prev = None;
    let mut last_micro = 0.0;
    for (t, snap) in snaps.iter().enumerate() {
        step_with(&mut model, prev, snap);
        let f1 = node_classification(
            &model.embedding(),
            snap,
            labels,
            dataset.num_classes,
            0.7,
            42 + t as u64,
        );
        println!(
            "{:<6}{:>8}{:>12.3}{:>12.3}",
            t,
            snap.num_nodes(),
            f1.micro,
            f1.macro_
        );
        last_micro = f1.micro;
        prev = Some(snap);
    }

    let chance = 1.0 / dataset.num_classes as f64;
    println!("\nfinal Micro-F1 {last_micro:.3} vs chance {chance:.3}");
    assert!(
        last_micro > 2.0 * chance,
        "embeddings should classify well above chance"
    );
    println!("OK: topological embeddings carry field information");
}
