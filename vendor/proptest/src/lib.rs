//! Offline mini-proptest.
//!
//! Implements the slice of the `proptest` API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` / `prop_filter`,
//! range and tuple strategies, `collection::vec`, the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (FNV of the test name + case index),
//! and there is **no shrinking** — a failure reports the case number so
//! it can be replayed deterministically.

pub mod strategy {
    use rand::SampleRange;
    use rand_chacha::ChaCha8Rng;
    use std::ops::Range;

    /// A value generator. `sample` returns `None` when a filter rejects
    /// the candidate (the runner retries with fresh randomness).
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one candidate value.
        fn sample(&self, rng: &mut ChaCha8Rng) -> Option<Self::Value>;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl AsRef<str>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.as_ref().to_string(),
                pred,
            }
        }
    }

    /// Strategy yielding exactly one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut ChaCha8Rng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut ChaCha8Rng) -> Option<U> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        #[allow(dead_code)]
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut ChaCha8Rng) -> Option<S::Value> {
            self.inner.sample(rng).filter(|v| (self.pred)(v))
        }
    }

    impl<T: Clone> Strategy for Range<T>
    where
        Range<T>: SampleRange<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut ChaCha8Rng) -> Option<T> {
            Some(rand::Rng::gen_range(rng, self.clone()))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut ChaCha8Rng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.sample(rng)?,)+))
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand_chacha::ChaCha8Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut ChaCha8Rng) -> Option<Vec<S::Value>> {
            let len = if self.size.0.is_empty() {
                self.size.0.start
            } else {
                rand::Rng::gen_range(rng, self.size.0.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Runner configuration (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected candidates before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Outcome of one generated case.
    pub enum TestResult {
        /// Case passed.
        Pass,
        /// Case failed; message describes the assertion.
        Fail(String),
        /// Candidate rejected by a filter or `prop_assume!`.
        Reject,
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive `case` until `config.cases` successes or a failure. Each
    /// attempt gets a deterministic RNG derived from the test name and
    /// attempt index, so failures are replayable.
    pub fn run(config: Config, name: &str, mut case: impl FnMut(&mut ChaCha8Rng) -> TestResult) {
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            let mut rng = ChaCha8Rng::seed_from_u64(base.wrapping_add(attempt));
            match case(&mut rng) {
                TestResult::Pass => passed += 1,
                TestResult::Reject => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many rejected candidates \
                             ({rejected}) after {passed} passing cases"
                        );
                    }
                }
                TestResult::Fail(msg) => {
                    panic!(
                        "proptest '{name}' failed at attempt {attempt} \
                         (seed base {base:#x}): {msg}"
                    );
                }
            }
            attempt += 1;
        }
    }
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (@items ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    ($cfg).clone(),
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $pat = match $crate::strategy::Strategy::sample(
                                &($strat),
                                __proptest_rng,
                            ) {
                                Some(v) => v,
                                None => return $crate::test_runner::TestResult::Reject,
                            };
                        )+
                        $body
                        $crate::test_runner::TestResult::Pass
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// replayable report instead of unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::TestResult::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::test_runner::TestResult::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return $crate::test_runner::TestResult::Fail(
                format!("assertion failed: {} == {}: {:?} != {:?}",
                        stringify!($a), stringify!($b), lhs, rhs),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return $crate::test_runner::TestResult::Fail(
                format!("assertion failed: {} == {}: {:?} != {:?}: {}",
                        stringify!($a), stringify!($b), lhs, rhs, format!($($fmt)+)),
            );
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return $crate::test_runner::TestResult::Fail(format!(
                "assertion failed: {} != {}: both are {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            ));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::TestResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for &e in &v { prop_assert!(e < 10, "element {} out of range", e); }
        }

        #[test]
        fn map_and_filter_compose((a, b) in (0u32..50, 0u32..50).prop_map(|(x, y)| (x.min(y), x.max(y))).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert!(a < b);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at attempt")]
    fn failures_panic_with_replay_info() {
        crate::test_runner::run(
            crate::test_runner::Config::with_cases(4),
            "always_fails",
            |_| crate::test_runner::TestResult::Fail("boom".into()),
        );
    }
}
