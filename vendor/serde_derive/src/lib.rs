//! No-op `Serialize` / `Deserialize` derives for the vendored `serde`
//! stub. They expand to nothing: the stub traits are empty markers, and
//! no code in this workspace serialises through serde — the derives on
//! `NodeId` exist so the type is serde-ready once the real crate is
//! available again.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
