//! Offline stand-in for `rayon` covering the parallel-iterator surface
//! this workspace uses: `par_iter` over slices, `into_par_iter` over
//! ranges and vectors, `par_chunks_mut`, and the `map` / `filter` /
//! `enumerate` / `flat_map_iter` / `for_each` / `collect` combinators.
//!
//! Execution model: combinators are **eager** — each stage materialises
//! its input into a `Vec` and processes it on `available_parallelism()`
//! scoped `std::thread`s with dynamic chunk scheduling (an atomic chunk
//! cursor, ~4 chunks per thread). Results preserve input order, matching
//! rayon's indexed-collect semantics. This trades rayon's work-stealing
//! pool for zero dependencies; per-call thread spawn is ~tens of
//! microseconds, negligible for the corpus-sized workloads here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over every item, two-level scheduled (atomic cursor over
/// contiguous chunks), returning results in input order.
/// One unit of scheduled work: a chunk of input slots paired with its
/// output slots, taken by whichever worker claims the chunk index.
type WorkChunk<'a, T, R> = Mutex<Option<(&'a mut [Option<T>], &'a mut [Option<R>])>>;

fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads * 4).max(1);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    {
        let work: Vec<WorkChunk<'_, T, R>> = slots
            .chunks_mut(chunk_len)
            .zip(out.chunks_mut(chunk_len))
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let f = &f;
        let work = &work;
        let cursor = &cursor;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let (ts, rs) = work[i].lock().unwrap().take().unwrap();
                    for (t, r) in ts.iter_mut().zip(rs.iter_mut()) {
                        *r = Some(f(t.take().unwrap()));
                    }
                });
            }
        });
    }
    out.into_iter().map(|r| r.unwrap()).collect()
}

/// An eager "parallel iterator": a materialised item list whose
/// combinators run on multiple threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, order-preserving.
    pub fn map<R: Send>(self, f: impl Fn(T) -> R + Sync) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Parallel filter, order-preserving.
    pub fn filter(self, f: impl Fn(&T) -> bool + Sync) -> ParIter<T> {
        let kept = par_map_vec(self.items, |t| if f(&t) { Some(t) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Parallel map to a serial iterator per item, flattened in order.
    pub fn flat_map_iter<R: Send, I: IntoIterator<Item = R>>(
        self,
        f: impl Fn(T) -> I + Sync,
    ) -> ParIter<R> {
        let nested = par_map_vec(self.items, |t| f(t).into_iter().collect::<Vec<R>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Parallel side-effecting visit.
    pub fn for_each(self, f: impl Fn(T) + Sync) {
        par_map_vec(self.items, f);
    }

    /// Collect the (already ordered) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par!(u32, u64, usize);

/// `par_iter()` over shared slices (and anything derefing to one).
pub trait ParallelSlice<T: Sync> {
    /// Borrowing parallel iterator.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut()` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    num_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_then_map() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .map(|x| x + 1)
            .collect();
        assert_eq!(
            out,
            (0..100)
                .filter(|x| x % 3 == 0)
                .map(|x| x + 1)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let v = [1usize, 2, 3];
        let out: Vec<usize> = v.par_iter().flat_map_iter(|&x| 0..x).collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        (0..500usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        (0..256usize).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        let n = seen.lock().unwrap().len();
        if super::num_threads() > 1 {
            assert!(n > 1, "expected more than one worker thread, saw {n}");
        }
    }
}
