//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the vendored `rand` traits.
//!
//! The cipher core follows RFC 8439 (96-bit nonce fixed to zero, 32-bit
//! block counter extended to 64 bits across words 12–13 as upstream
//! `rand_chacha` does). Stream values are deterministic per seed but not
//! bit-compatible with upstream `rand_chacha` — nothing in this
//! workspace relies on upstream values.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 8;

/// A ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word of `buffer`; `BLOCK_WORDS` forces a refill.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        self.buffer = working;
        self.cursor = 0;
        // 64-bit block counter across words 12 and 13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // words 12..16: counter = 0, nonce = 0
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let v = self.buffer[self.cursor];
        self.cursor += 1;
        v
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn uniformish_range_draws() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
