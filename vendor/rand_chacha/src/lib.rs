//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the vendored `rand` traits.
//!
//! The cipher core follows RFC 8439 (96-bit nonce fixed to zero, 32-bit
//! block counter extended to 64 bits across words 12–13 as upstream
//! `rand_chacha` does). Stream values are deterministic per seed but not
//! bit-compatible with upstream `rand_chacha` — nothing in this
//! workspace relies on upstream values.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 8;

/// A ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word of `buffer`; `BLOCK_WORDS` forces a refill.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Number of 32-bit words consumed from the keystream so far.
    ///
    /// Together with [`ChaCha8Rng::set_word_pos`] this makes the
    /// generator checkpointable: a stream restored to the same word
    /// position produces the same remaining draws. The word counter is
    /// derived from the cipher's 64-bit block counter (words 12–13),
    /// which counts *generated* blocks — the block counter is one ahead
    /// of the block currently being read.
    pub fn word_pos(&self) -> u64 {
        let counter = self.state[12] as u64 | ((self.state[13] as u64) << 32);
        if counter == 0 {
            // Fresh generator: nothing generated, nothing consumed.
            0
        } else {
            (counter - 1) * BLOCK_WORDS as u64 + self.cursor as u64
        }
    }

    /// Fast-forward (or rewind) the keystream to an absolute word
    /// position, as previously reported by [`ChaCha8Rng::word_pos`].
    /// O(1): seeks the block counter directly instead of redrawing.
    pub fn set_word_pos(&mut self, pos: u64) {
        let block = pos / BLOCK_WORDS as u64;
        let rem = (pos % BLOCK_WORDS as u64) as usize;
        self.state[12] = block as u32;
        self.state[13] = (block >> 32) as u32;
        if rem == 0 {
            // Exactly on a block boundary: the next draw refills.
            self.cursor = BLOCK_WORDS;
        } else {
            self.refill();
            self.cursor = rem;
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        self.buffer = working;
        self.cursor = 0;
        // 64-bit block counter across words 12 and 13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // words 12..16: counter = 0, nonce = 0
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let v = self.buffer[self.cursor];
        self.cursor += 1;
        v
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn uniformish_range_draws() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn word_pos_round_trips_mid_block_and_on_boundaries() {
        // Consume a prefix, record the position, restore a fresh
        // generator to it: the remaining streams must agree bit for
        // bit. Cover in-block, block-boundary, and multi-block cases.
        for consumed in [0usize, 1, 7, 15, 16, 17, 32, 100] {
            let mut a = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                a.next_u32();
            }
            assert_eq!(a.word_pos(), consumed as u64);
            let mut b = ChaCha8Rng::seed_from_u64(99);
            b.set_word_pos(consumed as u64);
            assert_eq!(b.word_pos(), consumed as u64);
            for _ in 0..40 {
                assert_eq!(a.next_u32(), b.next_u32(), "consumed={consumed}");
            }
        }
    }

    #[test]
    fn set_word_pos_rewinds() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..20).map(|_| r.next_u32()).collect();
        r.set_word_pos(0);
        let again: Vec<u32> = (0..20).map(|_| r.next_u32()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
