//! Offline stand-in for the `bytes` crate: `Vec<u8>`-backed [`Bytes`] /
//! [`BytesMut`] plus the [`Buf`] / [`BufMut`] trait methods the
//! embedding-persistence code uses. No refcounted zero-copy slicing —
//! `slice` copies — which is fine for the file-sized buffers involved.

use std::sync::Arc;

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the unread remainder.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread remainder as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the unread remainder into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-range of the unread remainder (shares the backing buffer).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f32_le(-1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5, "parent unchanged");
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn over_read_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let mut out = [0u8; 4];
        b.copy_to_slice(&mut out);
    }
}
