//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom::shuffle`]. Algorithms are honest re-implementations
//! (Lemire-free modulo range reduction, 53-bit float conversion,
//! Fisher–Yates shuffle); they are *not* guaranteed to be bit-compatible
//! with upstream `rand` — nothing in this workspace depends on upstream
//! stream values, only on determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 significant bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from fixed data.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffle/choose extensions on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n: i64 = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = Counter(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
