//! Offline mini-criterion.
//!
//! Covers the API this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock harness: per
//! benchmark it warms up once, times `sample_size` iterations, and
//! prints mean / best / stddev (plus elements-per-second when a
//! throughput is set). No statistical regression analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(&id.full_name(), self.sample_size, None, &mut f);
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with an attached parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.full_name()),
            self.criterion.sample_size,
            self.throughput,
            &mut f,
        );
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id.full_name()),
            self.criterion.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
    }

    /// End the group (parity with criterion's API; prints nothing extra).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, one sample per call, `sample_size` times after a warmup.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warmup, also primes caches/allocator
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<44} (no samples — closure never called iter)");
        return;
    }
    let secs: Vec<f64> = bencher.samples.iter().map(|d| d.as_secs_f64()).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let best = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let var = secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / secs.len() as f64;
    let line = format!(
        "{label:<44} mean {:>12} best {:>12} ±{:>10}",
        fmt_time(mean),
        fmt_time(best),
        fmt_time(var.sqrt())
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("{line}  thrpt {:>14.0} elem/s", n as f64 / mean);
        }
        Some(Throughput::Bytes(n)) => {
            println!(
                "{line}  thrpt {:>11.2} MiB/s",
                n as f64 / mean / (1 << 20) as f64
            );
        }
        None => println!("{line}"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions, criterion-style. Supports both the
/// `name = ...; config = ...; targets = ...` form and the positional
/// `(group_name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 1 warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("case", 7), &vec![1u32; 8], |b, v| {
            b.iter(|| v.iter().sum::<u32>())
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.5).ends_with(" s"));
        assert!(fmt_time(0.002).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(5e-9).ends_with(" ns"));
    }
}
