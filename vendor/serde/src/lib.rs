//! Offline stand-in for `serde`: empty marker traits plus no-op derive
//! macros. Nothing in this workspace serialises through serde (the
//! binary embedding format is hand-rolled via `bytes`); the derives on
//! graph ids are kept source-compatible for when the real crate returns.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
