//! End-to-end test of the streaming session layer: ingesting a timed
//! edge stream event-by-event under `TimestampBoundary` must produce
//! embeddings equivalent to the batch `run_over` path on the same cuts
//! (same seeds, sequential training => bit-identical), and the step
//! trait must carry populated `StepReport`s for GloDyNE and baselines.

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_baselines::{bcgd::BcgdConfig, dynline::DynLineConfig, BcgdLocal, DynLine};
use glodyne_embed::traits::{run_over, run_over_reports, DynamicEmbedder};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::{Embedding, SgnsConfig};
use glodyne_graph::id::{NodeId, TimedEdge};
use glodyne_graph::DynamicNetwork;
use glodyne_tasks::gr::mean_precision_at_k;

/// A growing two-community stream over four distinct timestamps.
fn fixture_stream() -> Vec<TimedEdge> {
    let mut stream = Vec::new();
    // t=0: two 8-cliques plus one bridge.
    for c in 0..2u32 {
        let base = c * 8;
        for i in 0..8 {
            for j in (i + 1)..8 {
                stream.push(TimedEdge::new(NodeId(base + i), NodeId(base + j), 0));
            }
        }
    }
    stream.push(TimedEdge::new(NodeId(0), NodeId(8), 0));
    // t=1..3: a chain grows out of node 0, plus intra-community churn.
    for t in 1..4u64 {
        let v = 15 + t as u32;
        stream.push(TimedEdge::new(NodeId(v), NodeId(v + 1), t));
        stream.push(TimedEdge::new(NodeId(0), NodeId(v), t));
        stream.push(TimedEdge::new(NodeId(t as u32), NodeId(8 + t as u32), t));
    }
    stream
}

fn glodyne_cfg() -> GloDyNEConfig {
    GloDyNEConfig {
        alpha: 0.3,
        walk: WalkConfig {
            walks_per_node: 3,
            walk_length: 10,
            seed: 5,
        },
        sgns: SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 3,
            epochs: 2,
            parallel: false, // sequential => bit-exact reproducible
            ..Default::default()
        },
        ..Default::default()
    }
}

fn assert_embeddings_identical(a: &Embedding, b: &Embedding, t: usize) {
    assert_eq!(a.len(), b.len(), "step {t}: node counts differ");
    for (id, v) in a.iter() {
        assert_eq!(b.get(id), Some(v), "step {t}: vector of {id} differs");
    }
}

#[test]
fn session_stream_equals_batch_run_over() {
    let stream = fixture_stream();

    // Batch path: cut the stream at every distinct timestamp, reduce to
    // LCCs, drive with run_over.
    let mut cuts: Vec<u64> = stream.iter().map(|e| e.time).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let net = DynamicNetwork::from_edge_stream(stream.clone(), &cuts);
    let mut batch_model = GloDyNE::new(glodyne_cfg()).unwrap();
    let batch_embs = run_over(&mut batch_model, net.snapshots());

    // Streaming path: the same edges, one event at a time.
    let mut session = EmbedderSession::new(
        GloDyNE::new(glodyne_cfg()).unwrap(),
        EpochPolicy::TimestampBoundary,
    )
    .unwrap();
    let mut stream_embs: Vec<Embedding> = Vec::new();
    for &te in &stream {
        if session.apply(te.into()) {
            stream_embs.push(session.embedding().clone());
        }
    }
    session.flush();
    stream_embs.push(session.embedding().clone());

    assert_eq!(batch_embs.len(), stream_embs.len(), "same number of steps");
    for (t, (b, s)) in batch_embs.iter().zip(&stream_embs).enumerate() {
        assert_embeddings_identical(b, s, t);
    }

    // And the downstream-task quality matches exactly on the final cut.
    let last = net.snapshots().last().unwrap();
    let batch_gr = mean_precision_at_k(batch_embs.last().unwrap(), last, &[10])[0];
    let stream_gr = mean_precision_at_k(stream_embs.last().unwrap(), last, &[10])[0];
    assert_eq!(batch_gr, stream_gr, "tasks-level equivalence");
    assert!(batch_gr > 0.0);
}

#[test]
fn session_reports_are_populated() {
    let mut session = EmbedderSession::new(
        GloDyNE::new(glodyne_cfg()).unwrap(),
        EpochPolicy::TimestampBoundary,
    )
    .unwrap();
    session.ingest(&fixture_stream());
    session.flush();
    assert_eq!(session.steps(), 4, "four distinct timestamps");
    let offline = &session.reports()[0];
    assert!(offline.trained_pairs > 0);
    assert!(offline.corpus_tokens > 0);
    assert!(offline.selected > 0);
    for (t, r) in session.reports().iter().enumerate().skip(1) {
        assert!(r.selected > 0, "step {t} selected nothing");
        assert!(r.corpus_tokens > 0, "step {t} walked nothing");
    }
    // Queries answer from the live embedding.
    assert!(session.query(NodeId(0)).is_some());
    let near = session.nearest(NodeId(0), 5);
    assert_eq!(near.len(), 5);
}

#[test]
fn baselines_run_through_step_trait_with_reports() {
    let stream = fixture_stream();
    let mut cuts: Vec<u64> = stream.iter().map(|e| e.time).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let net = DynamicNetwork::from_edge_stream(stream, &cuts);

    let mut methods: Vec<Box<dyn DynamicEmbedder>> = vec![
        Box::new(
            BcgdLocal::new(BcgdConfig {
                dim: 8,
                iterations: 5,
                ..Default::default()
            })
            .unwrap(),
        ),
        Box::new(
            DynLine::new(DynLineConfig {
                dim: 8,
                samples_per_node: 20,
                ..Default::default()
            })
            .unwrap(),
        ),
    ];
    for method in methods.iter_mut() {
        let results = run_over_reports(method.as_mut(), net.snapshots());
        assert_eq!(results.len(), net.len());
        for (t, (emb, report)) in results.iter().enumerate() {
            assert!(
                !emb.is_empty(),
                "{} step {t}: empty embedding",
                method.name()
            );
            assert!(
                report.selected > 0,
                "{} step {t}: StepReport.selected empty",
                method.name()
            );
        }
        // A baseline can also drive a full streaming session.
    }
}

#[test]
fn baseline_inside_a_session() {
    let model = BcgdLocal::new(BcgdConfig {
        dim: 8,
        iterations: 5,
        ..Default::default()
    })
    .unwrap();
    let mut session = EmbedderSession::new(model, EpochPolicy::TimestampBoundary).unwrap();
    session.ingest(&fixture_stream());
    session.flush();
    assert_eq!(session.steps(), 4);
    assert!(session.query(NodeId(1)).is_some());
    assert!(session.reports().iter().all(|r| r.selected > 0));
}
