//! Integration tests of the paper's structural claims: selection
//! diversity, reservoir bookkeeping across real streams, and the
//! partition-based coverage guarantees of strategy S4.

use glodyne::reservoir::Reservoir;
use glodyne::select::{select_nodes, Strategy};
use glodyne_graph::SnapshotDiff;
use glodyne_partition::{partition, PartitionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Spatial diversity of a selection: mean pairwise BFS distance between
/// selected nodes (higher = more spread out).
fn mean_pairwise_distance(g: &glodyne_graph::Snapshot, selected: &[u32]) -> f64 {
    use glodyne_graph::traversal::{bfs_distances, UNREACHABLE};
    let mut total = 0u64;
    let mut count = 0u64;
    for (i, &a) in selected.iter().enumerate() {
        let dist = bfs_distances(g, a as usize);
        for &b in &selected[i + 1..] {
            if dist[b as usize] != UNREACHABLE {
                total += dist[b as usize] as u64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[test]
fn s4_selection_is_more_diverse_than_s1() {
    // The §5.3.4 diversity ranking S1 < S4, measured as spread over the
    // graph, on a community network whose activity is localized.
    let dataset = glodyne_datasets::fbw(0.4, 3);
    let net = &dataset.network;
    let (prev, curr) = (net.snapshot(net.len() - 2), net.snapshot(net.len() - 1));
    let mut reservoir = Reservoir::new();
    for t in 1..net.len() {
        reservoir.absorb(&SnapshotDiff::compute(net.snapshot(t - 1), net.snapshot(t)));
    }
    let k = (curr.num_nodes() / 12).max(4);
    let mut rng = ChaCha8Rng::seed_from_u64(0);

    let mut d1_acc = 0.0;
    let mut d4_acc = 0.0;
    let trials = 5;
    for _ in 0..trials {
        let s1 = select_nodes(Strategy::S1, curr, prev, &reservoir, k, 0.1, &mut rng);
        let s4 = select_nodes(Strategy::S4, curr, prev, &reservoir, k, 0.1, &mut rng);
        d1_acc += mean_pairwise_distance(curr, &s1);
        d4_acc += mean_pairwise_distance(curr, &s4);
    }
    assert!(
        d4_acc > d1_acc,
        "S4 spread {:.2} should exceed S1 spread {:.2}",
        d4_acc / trials as f64,
        d1_acc / trials as f64
    );
}

#[test]
fn s4_hits_every_partition_cell() {
    let dataset = glodyne_datasets::elec(0.3, 4);
    let net = &dataset.network;
    let (prev, curr) = (net.snapshot(0), net.snapshot(1));
    let mut reservoir = Reservoir::new();
    reservoir.absorb(&SnapshotDiff::compute(prev, curr));
    let k = 8;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let s4 = select_nodes(Strategy::S4, curr, prev, &reservoir, k, 0.1, &mut rng);
    assert_eq!(s4.len(), k, "one representative per sub-network");
}

#[test]
fn reservoir_mass_conserved_over_stream() {
    // Every absorbed change stays in the reservoir until cleared.
    let dataset = glodyne_datasets::hepph(0.25, 5);
    let net = &dataset.network;
    let mut reservoir = Reservoir::new();
    let mut absorbed = 0u64;
    for t in 1..net.len() {
        let diff = net.diff_at(t);
        absorbed += diff.changed_degree.values().map(|&v| v as u64).sum::<u64>();
        reservoir.absorb(&diff);
    }
    assert_eq!(reservoir.total(), absorbed);
    // Clearing every touched node empties it exactly.
    let touched: Vec<_> = reservoir.touched_nodes().collect();
    let mut cleared = 0u64;
    let mut r = reservoir.clone();
    for id in touched {
        cleared += r.clear_node(id);
    }
    assert_eq!(cleared, absorbed);
    assert!(r.is_empty());
}

#[test]
fn partition_scales_with_alpha_like_usage() {
    // GloDyNE partitions with K = α|V|: check Definition 5 invariants on
    // a real snapshot at the paper's default α = 0.1.
    let dataset = glodyne_datasets::fbw(0.4, 6);
    let g = dataset.network.snapshot(dataset.network.len() - 1);
    let k = ((g.num_nodes() as f64) * 0.1).round() as usize;
    let p = partition(g, &PartitionConfig::with_k(k));
    let parts = p.parts();
    assert_eq!(parts.len(), k);
    assert!(parts.iter().all(|m| !m.is_empty()));
    let covered: usize = parts.iter().map(|m| m.len()).sum();
    assert_eq!(covered, g.num_nodes());
    // Edge cut should be far below total edges on a community graph.
    assert!(
        p.edge_cut(g) * 2 < g.num_edges(),
        "cut {} vs edges {}",
        p.edge_cut(g),
        g.num_edges()
    );
}
