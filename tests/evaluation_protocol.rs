//! Integration tests of the evaluation protocol itself: the downstream
//! tasks must rank an oracle embedding above a trained one above a
//! random one, on real generated data — otherwise table numbers are
//! meaningless.

use glodyne::{GloDyNE, GloDyNEConfig};
use glodyne_embed::traits::{run_over, DynamicEmbedder};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::{Embedding, SgnsConfig};
use glodyne_graph::Snapshot;
use glodyne_tasks::gr::mean_precision_at_k;
use glodyne_tasks::lp::{build_test_set, link_prediction_auc};
use glodyne_tasks::nc::node_classification;
use glodyne_tasks::stability::{project_2d, rotation_angle_2d};
use rand::{Rng, SeedableRng};

/// Oracle: each node's vector is its (self-anchored) adjacency row.
fn oracle_embedding(g: &Snapshot) -> Embedding {
    let n = g.num_nodes();
    let mut e = Embedding::new(n);
    for l in 0..n {
        let mut v = vec![0.0f32; n];
        v[l] = 0.5;
        for &u in g.neighbors(l) {
            v[u as usize] = 1.0;
        }
        e.set(g.node_id(l), &v);
    }
    e
}

fn random_embedding(g: &Snapshot, dim: usize, seed: u64) -> Embedding {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut e = Embedding::new(dim);
    for l in 0..g.num_nodes() {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        e.set(g.node_id(l), &v);
    }
    e
}

fn trained_embedding(snaps: &[Snapshot]) -> Embedding {
    let mut m = GloDyNE::new(GloDyNEConfig {
        alpha: 0.3,
        walk: WalkConfig {
            walks_per_node: 6,
            walk_length: 20,
            seed: 11,
        },
        sgns: SgnsConfig {
            dim: 32,
            window: 4,
            negatives: 4,
            epochs: 4,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let _ = run_over(&mut m, snaps);
    m.embedding()
}

#[test]
fn gr_ranks_oracle_trained_random() {
    let dataset = glodyne_datasets::fbw(0.25, 21);
    let snaps = dataset.network.snapshots();
    let last = snaps.last().unwrap();
    let oracle = mean_precision_at_k(&oracle_embedding(last), last, &[10])[0];
    let trained = mean_precision_at_k(&trained_embedding(snaps), last, &[10])[0];
    let random = mean_precision_at_k(&random_embedding(last, 32, 1), last, &[10])[0];
    // The adjacency-cosine oracle is strong but imperfect (non-adjacent
    // nodes can share identical neighbourhoods), and a well-trained model
    // can legitimately edge past it (measured here: oracle ≈ 0.836,
    // trained ≈ 0.854, random ≈ 0.150). Strict `oracle > trained` is
    // therefore the wrong invariant; instead pin the structure the
    // protocol actually needs: oracle and trained both far above random,
    // oracle at least competitive with trained, random near chance.
    eprintln!("gr ordering: oracle {oracle:.4}, trained {trained:.4}, random {random:.4}");
    assert!(
        oracle >= 0.95 * trained && trained > 3.0 * random,
        "ordering broken: oracle {oracle:.3}, trained {trained:.3}, random {random:.3}"
    );
    assert!(
        random < 0.3,
        "random baseline suspiciously strong: {random:.3} — metric leak?"
    );
    // On a community graph adjacency-cosine is a strong but not perfect
    // reconstructor (non-adjacent nodes can share identical
    // neighbourhoods); it must still be clearly high.
    assert!(oracle > 0.6, "oracle unexpectedly weak: {oracle:.3}");
}

#[test]
fn lp_ranks_trained_above_random() {
    let dataset = glodyne_datasets::elec(0.25, 22);
    let snaps = dataset.network.snapshots();
    let trained = trained_embedding(snaps);
    // Per-transition test sets are tiny on a slow-moving network;
    // average over all transitions to tame the variance.
    let mut auc_trained = 0.0;
    let mut auc_random = 0.0;
    let mut n = 0.0;
    for t in 0..snaps.len() - 1 {
        let test = build_test_set(&snaps[t], &snaps[t + 1], 3 + t as u64);
        if test.is_empty() {
            continue;
        }
        auc_trained += link_prediction_auc(&trained, &test);
        auc_random += link_prediction_auc(&random_embedding(&snaps[t], 32, t as u64), &test);
        n += 1.0;
    }
    auc_trained /= n;
    auc_random /= n;
    assert!(
        auc_trained > auc_random,
        "trained AUC {auc_trained:.3} <= random {auc_random:.3}"
    );
    assert!(
        (auc_random - 0.5).abs() < 0.2,
        "random embedding should be near chance, got {auc_random:.3}"
    );
}

#[test]
fn nc_ranks_trained_above_random() {
    let dataset = glodyne_datasets::cora(0.4, 23);
    let snaps = dataset.network.snapshots();
    let labels = dataset.labels.as_ref().unwrap();
    let last = snaps.last().unwrap();
    let trained = trained_embedding(snaps);
    let f_trained = node_classification(&trained, last, labels, dataset.num_classes, 0.7, 1);
    let f_random = node_classification(
        &random_embedding(last, 32, 3),
        last,
        labels,
        dataset.num_classes,
        0.7,
        1,
    );
    assert!(
        f_trained.micro > f_random.micro,
        "trained micro {:.3} <= random {:.3}",
        f_trained.micro,
        f_random.micro
    );
}

#[test]
fn stability_metric_detects_rotation_on_real_embeddings() {
    // Rotating a real embedding's 2-D projection must register as a
    // rotation by the Figure-5 metric.
    let dataset = glodyne_datasets::elec(0.2, 24);
    let snaps = dataset.network.snapshots();
    let emb = trained_embedding(&snaps[..3]);
    let (ids, proj) = project_2d(&emb, 7);
    // Rotate the projection by 60 degrees.
    let theta = std::f64::consts::FRAC_PI_3;
    let mut rotated = proj.clone();
    for i in 0..proj.rows() {
        let (x, y) = (proj[(i, 0)], proj[(i, 1)]);
        rotated[(i, 0)] = x * theta.cos() - y * theta.sin();
        rotated[(i, 1)] = x * theta.sin() + y * theta.cos();
    }
    let detected = rotation_angle_2d(&ids, &proj, &ids, &rotated).unwrap();
    assert!(
        (detected - theta).abs() < 1e-6,
        "detected {detected} expected {theta}"
    );
}
