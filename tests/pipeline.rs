//! Cross-crate integration tests: every method runs end-to-end on real
//! generated dynamic networks and produces embeddings that beat chance.

use glodyne::variants::VariantConfig;
use glodyne::{GloDyNE, GloDyNEConfig, SgnsIncrement, SgnsRetrain, SgnsStatic};
use glodyne_baselines::{
    bcgd::BcgdConfig, dyngem::DynGemConfig, dynline::DynLineConfig, dyntriad::DynTriadConfig,
    tne::TneConfig, BcgdGlobal, BcgdLocal, DynGem, DynLine, DynTriad, TNE,
};
use glodyne_embed::traits::{run_over, step_with, DynamicEmbedder};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::{Embedding, SgnsConfig};
use glodyne_graph::Snapshot;
use glodyne_tasks::gr::mean_precision_at_k;
use rand::{Rng, SeedableRng};

fn small_walk() -> WalkConfig {
    WalkConfig {
        walks_per_node: 4,
        walk_length: 16,
        seed: 3,
    }
}

fn small_sgns() -> SgnsConfig {
    SgnsConfig {
        dim: 24,
        window: 4,
        negatives: 4,
        epochs: 3,
        parallel: false,
        ..Default::default()
    }
}

fn random_embedding_like(e: &Embedding, seed: u64) -> Embedding {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut out = Embedding::new(e.dim());
    for (id, _) in e.iter() {
        let v: Vec<f32> = (0..e.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        out.set(id, &v);
    }
    out
}

/// GR quality of the final step for a method, and of a random embedding
/// with the same support.
fn final_gr(method: &mut dyn DynamicEmbedder, snaps: &[Snapshot]) -> (f64, f64) {
    let mut prev = None;
    for s in snaps {
        step_with(method, prev, s);
        prev = Some(s);
    }
    let emb = method.embedding();
    let last = snaps.last().unwrap();
    let score = mean_precision_at_k(&emb, last, &[10])[0];
    let random = mean_precision_at_k(&random_embedding_like(&emb, 1), last, &[10])[0];
    (score, random)
}

#[test]
fn glodyne_beats_random_on_community_stream() {
    let dataset = glodyne_datasets::fbw(0.25, 5);
    let snaps = dataset.network.snapshots();
    let mut m = GloDyNE::new(GloDyNEConfig {
        alpha: 0.2,
        walk: small_walk(),
        sgns: small_sgns(),
        ..Default::default()
    })
    .unwrap();
    let (score, random) = final_gr(&mut m, snaps);
    assert!(
        score > random * 2.0,
        "GloDyNE GR {score:.3} should dwarf random {random:.3}"
    );
}

#[test]
fn every_baseline_beats_random_on_citation_graph() {
    let dataset = glodyne_datasets::cora(0.3, 6);
    let snaps = &dataset.network.snapshots()[..4]; // keep runtime modest
    let dim = 24;

    let mut methods: Vec<Box<dyn DynamicEmbedder>> = vec![
        Box::new(
            BcgdLocal::new(BcgdConfig {
                dim,
                iterations: 25,
                learning_rate: 8e-3,
                ..Default::default()
            })
            .unwrap(),
        ),
        Box::new(
            BcgdGlobal::new(BcgdConfig {
                dim,
                iterations: 10,
                global_cycles: 1,
                learning_rate: 8e-3,
                ..Default::default()
            })
            .unwrap(),
        ),
        Box::new(
            DynGem::new(DynGemConfig {
                dim,
                hidden: 48,
                capacity: 2048,
                epochs: 12,
                ..Default::default()
            })
            .unwrap(),
        ),
        Box::new(
            DynLine::new(DynLineConfig {
                dim,
                samples_per_node: 80,
                ..Default::default()
            })
            .unwrap(),
        ),
        Box::new(
            DynTriad::new(DynTriadConfig {
                dim,
                epochs: 6,
                ..Default::default()
            })
            .unwrap(),
        ),
        Box::new(
            TNE::new(TneConfig {
                static_dim: dim,
                hidden: dim,
                dim,
                walk: small_walk(),
                sgns: small_sgns(),
                rnn_samples: 120,
                ..Default::default()
            })
            .unwrap(),
        ),
    ];

    for method in methods.iter_mut() {
        let (score, random) = final_gr(method.as_mut(), snaps);
        // DynGEM is the paper's weakest GR method on citation graphs
        // (7-11% MeanP@k on Cora, Table 1) — hold it to a softer margin.
        let margin = if method.name() == "DynGEM" { 1.15 } else { 1.5 };
        assert!(
            score > random * margin,
            "{} GR {score:.3} should beat random {random:.3} by {margin}x",
            method.name()
        );
    }
}

#[test]
fn variants_rank_increment_above_static_after_drift() {
    // On a churning network, frozen t=0 embeddings must fall behind the
    // incrementally updated ones — the paper's Figure 3/4 ordering.
    let dataset = glodyne_datasets::as733(0.3, 7);
    let snaps = dataset.network.snapshots();
    let cfg = VariantConfig {
        walk: small_walk(),
        sgns: small_sgns(),
    };
    let mut static_ = SgnsStatic::new(cfg.clone()).unwrap();
    let mut increment = SgnsIncrement::new(cfg).unwrap();
    let (s_static, _) = final_gr(&mut static_, snaps);
    let (s_incr, _) = final_gr(&mut increment, snaps);
    assert!(
        s_incr > s_static,
        "increment {s_incr:.3} should beat static {s_static:.3} after drift"
    );
}

#[test]
fn retrain_embeds_current_nodes_only() {
    let dataset = glodyne_datasets::as733(0.3, 8);
    let snaps = dataset.network.snapshots();
    let mut retrain = SgnsRetrain::new(VariantConfig {
        walk: small_walk(),
        sgns: small_sgns(),
    })
    .unwrap();
    let embs = run_over(&mut retrain, snaps);
    // Every node of the final snapshot is embedded after a full retrain.
    let last = snaps.last().unwrap();
    let emb = embs.last().unwrap();
    let missing = last
        .node_ids()
        .iter()
        .filter(|id| emb.get(**id).is_none())
        .count();
    assert_eq!(missing, 0, "{missing} nodes missing after full retrain");
}

#[test]
fn glodyne_alpha_controls_work() {
    // K = α|V| nodes are selected at online steps; bigger α must not
    // select fewer nodes.
    let dataset = glodyne_datasets::elec(0.25, 9);
    let snaps = dataset.network.snapshots();
    let counts: Vec<usize> = [0.05, 0.5]
        .iter()
        .map(|&alpha| {
            let mut m = GloDyNE::new(GloDyNEConfig {
                alpha,
                walk: small_walk(),
                sgns: small_sgns(),
                ..Default::default()
            })
            .unwrap();
            step_with(&mut m, None, &snaps[0]);
            step_with(&mut m, Some(&snaps[0]), &snaps[1]).selected
        })
        .collect();
    assert!(
        counts[1] > counts[0] * 5,
        "alpha=0.5 selected {} vs alpha=0.05 selected {}",
        counts[1],
        counts[0]
    );
}
