//! Workspace-level umbrella crate: re-exports the public surface of the
//! GloDyNE reproduction for the examples in `examples/` and the
//! cross-crate integration tests in `tests/`.
//!
//! Library users should normally depend on the individual crates
//! (`glodyne`, `glodyne-graph`, ...) directly; this crate exists so the
//! repository's runnable artifacts have a single, convenient root.

pub use glodyne;
pub use glodyne_baselines as baselines;
pub use glodyne_datasets as datasets;
pub use glodyne_embed as embed;
pub use glodyne_graph as graph;
pub use glodyne_linalg as linalg;
pub use glodyne_partition as partition;
pub use glodyne_tasks as tasks;
